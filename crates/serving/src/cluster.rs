//! The sharded serving cluster and its discrete-event loop.
//!
//! [`ServingCluster`] glues the pieces together: a consistent-hash ring
//! places contexts on shards; each shard owns an engine (with its slice of
//! the store), a local KV-bitstream cache, and a link; per-tenant bounded
//! queues apply backpressure; and the event loop replays a multi-tenant
//! arrival trace on one virtual clock, dispatching same-context batches
//! whenever a shard goes idle.

use cachegen::engine::{CacheGenEngine, EngineConfig};
use cachegen::RepairPolicy;
use cachegen_llm::SimModelConfig;
use cachegen_net::Link;
use cachegen_streamer::{AdaptPolicy, FecOverhead};
use cachegen_telemetry::{Recorder, SpanCtx, Stage, NOOP};
use cachegen_workloads::ServingRequest;

use crate::backend::{
    ExecutionBackend, ExecutionPlan, PlannedAdmission, PlannedBatch, PlannedChunk, PlannedQuery,
    PlannedRefetch, PlannedWork,
};
use crate::clock::EventQueue;
use crate::metrics::{Disposition, RequestOutcome, ServingReport};
use crate::queue::{Admission, EntryKind, QueuedRequest};
use crate::ring::HashRing;
use crate::shard::Shard;

/// Cluster-wide serving configuration.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Number of shards.
    pub num_shards: usize,
    /// Number of tenants sharing the cluster.
    pub num_tenants: usize,
    /// Virtual nodes per shard on the placement ring.
    pub virtual_nodes: usize,
    /// Queue depth at which admission degrades the encoding level.
    pub degrade_depth: usize,
    /// Queue depth at which admission sheds requests.
    pub shed_depth: usize,
    /// Maximum requests per coalesced batch.
    pub max_batch: usize,
    /// Per-shard local KV-bitstream cache capacity, bytes.
    pub cache_capacity_bytes: u64,
    /// SLO on per-request context-loading time, seconds.
    pub slo: Option<f64>,
    /// Streaming policy for normally-admitted requests.
    pub policy: AdaptPolicy,
    /// Level forced on degraded requests (`None` = coarsest).
    pub degraded_level: Option<usize>,
    /// Prior throughput knowledge for each stream's first chunk, bits/s.
    pub prior_throughput_bps: Option<f64>,
    /// GPU decode throughput for compressed bitstreams, bytes/s.
    pub decode_bytes_per_sec: f64,
    /// GPU prefill-recompute speed, seconds per token (text fallback and
    /// the query suffix's own prefill).
    pub recompute_sec_per_token: f64,
    /// Quality proxy per encoding level, finest first (text counts as 1).
    pub level_quality: Vec<f64>,
    /// How holes left by a lossy store link are repaired. Under
    /// [`RepairPolicy::Refetch`] the cluster enqueues a re-fetch that
    /// competes under the same admission watermarks as first fetches.
    pub repair: RepairPolicy,
    /// Packet retransmissions allowed per batch fetch before the repair
    /// policy takes over (per-packet-fault links only).
    pub retransmit_budget: usize,
    /// Default forward-error-correction parity density on store→shard
    /// links: XOR parity recovers single-loss groups before the
    /// retransmit budget or the repair/refetch ladder is consulted, so a
    /// lossy link stops flooding the shard queues with re-fetch entries.
    pub fec_overhead: FecOverhead,
    /// Per-tenant FEC overrides (`tenant_fec[t] = Some(knob)`), letting
    /// tenants buy more (or less) parity than the cluster default. The
    /// lead tenant of a batch decides the batch's parity.
    pub tenant_fec: Vec<Option<FecOverhead>>,
    /// Parity used for batches admitted *degraded*: under backpressure
    /// admission can shrink parity (e.g. [`FecOverhead::Off`]) instead of
    /// only coarsening the quantization level. `None` keeps the tenant's
    /// normal knob.
    pub degraded_fec: Option<FecOverhead>,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            num_shards: 2,
            num_tenants: 4,
            virtual_nodes: 16,
            degrade_depth: 6,
            shed_depth: 16,
            max_batch: 8,
            cache_capacity_bytes: 256 * 1024,
            slo: None,
            policy: AdaptPolicy::Adaptive,
            degraded_level: None,
            prior_throughput_bps: None,
            decode_bytes_per_sec: 8.0e9,
            recompute_sec_per_token: 1e-3,
            // Matches the default 5-level ladder; coarser bins lose more.
            level_quality: vec![0.995, 0.98, 0.95, 0.91, 0.86],
            repair: RepairPolicy::AnchorInterpolate,
            retransmit_budget: 1,
            fec_overhead: FecOverhead::Off,
            tenant_fec: Vec::new(),
            degraded_fec: None,
        }
    }
}

impl ServingConfig {
    /// Quality proxy of one encoding level (clamped to the table).
    pub fn quality_of_level(&self, level: usize) -> f64 {
        self.level_quality[level.min(self.level_quality.len() - 1)]
    }

    /// The FEC parity knob a batch runs with: the degraded override when
    /// admission degraded the batch (parity is a backpressure dial too),
    /// else the lead tenant's override, else the cluster default.
    pub fn fec_for(&self, tenant: usize, degraded: bool) -> &FecOverhead {
        if degraded {
            if let Some(f) = &self.degraded_fec {
                return f;
            }
        }
        self.tenant_fec
            .get(tenant)
            .and_then(Option::as_ref)
            .unwrap_or(&self.fec_overhead)
    }

    fn validate(&self) {
        assert!(self.num_shards >= 1, "need at least one shard");
        assert!(self.num_tenants >= 1, "need at least one tenant");
        assert!(self.max_batch >= 1, "need at least one request per batch");
        assert!(
            self.degrade_depth >= 1 && self.degrade_depth <= self.shed_depth,
            "watermarks must satisfy 1 <= degrade <= shed"
        );
        assert!(!self.level_quality.is_empty(), "need level qualities");
        assert!(self.decode_bytes_per_sec > 0.0);
        assert!(self.recompute_sec_per_token >= 0.0);
    }
}

/// Internal event type of the serving loop.
enum Event {
    /// Request `index` of the trace arrives.
    Arrival(usize),
    /// Shard `shard` finished its in-flight batch.
    BatchDone { shard: usize },
}

/// A sharded multi-tenant serving cluster.
pub struct ServingCluster {
    config: ServingConfig,
    ring: HashRing,
    shards: Vec<Shard>,
}

impl ServingCluster {
    /// Builds the cluster: one engine per shard (each profiles its codecs
    /// from `profile_contexts`) plus one store→shard link each. `links`
    /// must have exactly `num_shards` entries.
    pub fn build(
        model_cfg: SimModelConfig,
        engine_cfg: EngineConfig,
        config: ServingConfig,
        profile_contexts: &[Vec<usize>],
        links: Vec<Link>,
    ) -> Self {
        config.validate();
        assert_eq!(
            links.len(),
            config.num_shards,
            "need one link per shard ({} links for {} shards)",
            links.len(),
            config.num_shards
        );
        assert!(
            config.level_quality.len() >= engine_cfg.ladder.len(),
            "level_quality must cover the ladder"
        );
        let ring = HashRing::new(config.num_shards, config.virtual_nodes);
        let shards = links
            .into_iter()
            .enumerate()
            .map(|(id, link)| {
                let engine =
                    CacheGenEngine::build(model_cfg.clone(), engine_cfg.clone(), profile_contexts);
                Shard::new(id, engine, link, &config)
            })
            .collect();
        ServingCluster {
            config,
            ring,
            shards,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The shard a context lives on.
    pub fn shard_of(&self, context_id: u64) -> usize {
        self.ring.route(context_id)
    }

    /// Shard state (for inspection in tests and reports).
    pub fn shard(&self, id: usize) -> &Shard {
        &self.shards[id]
    }

    /// All shards, in id order (execution backends walk these to reach
    /// each shard's engine and link).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Runs a trace through an [`ExecutionBackend`] — the seam both the
    /// virtual-clock oracle and the OS-thread engine plug into.
    pub fn run_on(
        &mut self,
        backend: &mut dyn ExecutionBackend,
        requests: &[ServingRequest],
        recorder: &Recorder,
    ) -> ServingReport {
        backend.run(self, requests, recorder)
    }

    /// Runs the virtual loop while capturing the full [`ExecutionPlan`] —
    /// what a real backend replays. The report is the oracle's,
    /// byte-identical to [`run`](Self::run), and `recorder` sees exactly
    /// what [`run_traced`](Self::run_traced) would record (pass
    /// [`NOOP`] for an untraced planning pass; a real backend passes a
    /// scratch recorder to salvage the loop's live counters, e.g.
    /// `cachegen.streamer.*`).
    pub fn plan_run(
        &mut self,
        requests: &[ServingRequest],
        recorder: &Recorder,
    ) -> (ServingReport, ExecutionPlan) {
        let mut plan = ExecutionPlan::default();
        let report = self.run_plan(requests, recorder, Some(&mut plan));
        (report, plan)
    }

    /// Stores a context on its owning shard (offline ingest path).
    /// Returns the shard index.
    pub fn store_context(&mut self, context_id: u64, tokens: &[usize]) -> usize {
        let shard = self.ring.route(context_id);
        self.shards[shard].store_context(context_id, tokens);
        shard
    }

    /// Replays a multi-tenant arrival trace on the virtual clock and
    /// returns the full report. Requests must reference stored contexts
    /// and be sorted by arrival time.
    ///
    /// Each call reports that run alone: queues and per-shard accounting
    /// (including the cache counters) reset at entry. The local caches'
    /// *contents* deliberately stay warm across runs, so a warm-up trace
    /// followed by a measured trace behaves like a long-lived deployment.
    pub fn run(&mut self, requests: &[ServingRequest]) -> ServingReport {
        self.run_traced(requests, &NOOP)
    }

    /// [`run`](Self::run) with request-lifecycle tracing: every event pop
    /// advances the recorder's virtual clock, admission degrade/shed
    /// decisions land as instants, and each completed request gets a span
    /// tree that tiles its TTFT exactly — a `request` root over
    /// `queue_wait` (arrival → dispatch), `store_fetch` or `cache_decode`
    /// (dispatch → KV ready, with the streamer's per-chunk wire/decode
    /// spans nested under the batch lead), and `prefill` (ready → first
    /// token). Loss-repair re-fetch batches trace under synthetic request
    /// ids past the trace length. Link-level packet counters drain into
    /// the `cachegen.net.*` namespace and the report publishes itself
    /// under `cachegen.serving.*`. Passing [`NOOP`] makes this identical
    /// to `run` (the recorder is a no-op, not a different code path).
    pub fn run_traced(
        &mut self,
        requests: &[ServingRequest],
        recorder: &Recorder,
    ) -> ServingReport {
        self.run_plan(requests, recorder, None)
    }

    /// The discrete-event loop behind [`run_traced`](Self::run_traced),
    /// optionally capturing every decision it makes into an
    /// [`ExecutionPlan`]. With `plan = None` this *is* `run_traced` —
    /// capture only appends to side vectors, so the event sequence,
    /// recorder output, and report stay byte-identical either way (the
    /// golden digests in `tests/backend_equivalence.rs` pin that).
    fn run_plan(
        &mut self,
        requests: &[ServingRequest],
        recorder: &Recorder,
        mut plan: Option<&mut ExecutionPlan>,
    ) -> ServingReport {
        assert!(
            requests.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "requests must be sorted by arrival"
        );
        let cache_start: Vec<_> = self
            .shards
            .iter_mut()
            .map(|shard| {
                shard.stats = crate::metrics::ShardSummary::default();
                shard.queues = crate::queue::TenantQueues::new(
                    self.config.num_tenants,
                    self.config.degrade_depth,
                    self.config.shed_depth,
                );
                shard.busy = false;
                shard.link.reset_stats();
                shard.cache.stats()
            })
            .collect();
        let mut events: EventQueue<Event> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            assert!(r.tenant < self.config.num_tenants, "tenant out of range");
            assert!(
                self.shards[self.ring.route(r.context_id)].owns(r.context_id),
                "request references unstored context {}",
                r.context_id
            );
            events.push(r.arrival, Event::Arrival(i));
        }
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; requests.len()];
        // Re-fetch batches are not trace entries; their spans trace under
        // synthetic request ids starting past the trace length.
        let mut synthetic_id = requests.len() as u64;

        while let Some((now, event)) = events.pop() {
            recorder.set_time(now);
            match event {
                Event::Arrival(i) => {
                    let req = &requests[i];
                    let shard_id = self.ring.route(req.context_id);
                    let shard = &mut self.shards[shard_id];
                    let decision = shard.queues.push(QueuedRequest {
                        index: i,
                        tenant: req.tenant,
                        context_id: req.context_id,
                        arrival: req.arrival,
                        prompt_tokens: req.prompt.len(),
                        degraded: false,
                        kind: EntryKind::Query,
                    });
                    let ctx = SpanCtx::new(i as u64, req.tenant as u32, shard_id as u32);
                    match decision {
                        Admission::Shed => {
                            shard.stats.shed += 1;
                            if let Some(p) = plan.as_deref_mut() {
                                p.admissions.push(PlannedAdmission {
                                    request: i,
                                    tenant: req.tenant,
                                    shard: shard_id,
                                    shed: true,
                                });
                            }
                            recorder.instant_for(Stage::Admission, ctx, now, vec![("shed", 1.0)]);
                            outcomes[i] = Some(RequestOutcome {
                                tenant: req.tenant,
                                context_id: req.context_id,
                                shard: shard_id,
                                arrival: req.arrival,
                                disposition: Disposition::Shed,
                            });
                            continue;
                        }
                        Admission::Degraded => {
                            shard.stats.degraded_admissions += 1;
                            if let Some(p) = plan.as_deref_mut() {
                                p.admissions.push(PlannedAdmission {
                                    request: i,
                                    tenant: req.tenant,
                                    shard: shard_id,
                                    shed: false,
                                });
                            }
                            recorder.instant_for(
                                Stage::Admission,
                                ctx,
                                now,
                                vec![("degraded", 1.0)],
                            );
                        }
                        Admission::Normal => {}
                    }
                    if !self.shards[shard_id].busy {
                        self.dispatch(
                            shard_id,
                            now,
                            &mut outcomes,
                            &mut events,
                            recorder,
                            &mut synthetic_id,
                            plan.as_deref_mut(),
                        );
                    }
                }
                Event::BatchDone { shard } => {
                    self.shards[shard].busy = false;
                    if !self.shards[shard].queues.is_empty() {
                        self.dispatch(
                            shard,
                            now,
                            &mut outcomes,
                            &mut events,
                            recorder,
                            &mut synthetic_id,
                            plan.as_deref_mut(),
                        );
                    }
                }
            }
        }
        // Last completion time, prompt prefill included (a run of pure
        // sheds has no completions and a zero makespan).
        let makespan = outcomes
            .iter()
            .flatten()
            .filter_map(|o| o.ttft().map(|t| o.arrival + t))
            .fold(0.0f64, f64::max);

        for (shard, start) in self.shards.iter_mut().zip(&cache_start) {
            shard.stats.cache = shard.cache.stats().since(start);
            shard.stats.peak_queue_depth = shard.queues.peak_depth();
        }
        let report = ServingReport {
            outcomes: outcomes
                .into_iter()
                // analyze: allow(no-lib-unwrap, "the event loop runs to quiescence, so every admitted request's slot is filled; an empty slot is a scheduler bug worth a loud stop")
                .map(|o| o.expect("every request resolved"))
                .collect(),
            shards: self.shards.iter().map(|s| s.stats).collect(),
            makespan,
        };
        recorder.with_registry(|reg| {
            report.fill_registry(reg);
            for shard in &self.shards {
                let s = shard.link.stats();
                reg.add("cachegen.net.transfers", s.transfers);
                reg.add("cachegen.net.packet_batches", s.packet_batches);
                reg.add("cachegen.net.wire_bytes", s.wire_bytes);
                reg.add("cachegen.net.delivered_bytes", s.delivered_bytes);
                reg.add("cachegen.net.packets_sent", s.packets_sent);
                reg.add("cachegen.net.packets_dropped", s.packets_dropped);
                reg.add("cachegen.net.packets_truncated", s.packets_truncated);
            }
        });
        report
    }

    /// Pops the next batch off a shard's queues and serves it, recording
    /// outcomes and scheduling the completion event. A batch headed by a
    /// re-fetch entry pulls the missing bytes instead of running a full
    /// fetch; a query batch satisfies any re-fetch riders for free (the
    /// fresh transfer re-delivers the context).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        shard_id: usize,
        now: f64,
        outcomes: &mut [Option<RequestOutcome>],
        events: &mut EventQueue<Event>,
        recorder: &Recorder,
        synthetic_id: &mut u64,
        plan: Option<&mut ExecutionPlan>,
    ) {
        let shard = &mut self.shards[shard_id];
        let batch = shard.queues.pop_batch(self.config.max_batch);
        if batch.is_empty() {
            return;
        }
        let context_id = batch[0].context_id;
        let queries: Vec<&QueuedRequest> = batch
            .iter()
            .filter(|q| q.kind == EntryKind::Query)
            .collect();

        if queries.is_empty() {
            // Pure re-fetch batch: fill the holes a lossy transfer left.
            let (bytes, restore) = batch
                .iter()
                .map(|q| match q.kind {
                    EntryKind::Refetch {
                        bytes,
                        restore_quality,
                    } => (bytes, restore_quality),
                    EntryKind::Query => unreachable!("filtered above"),
                })
                .fold((0u64, 0.0f64), |(b, q), (nb, nq)| (b + nb, q.max(nq)));
            let ready = shard.serve_refetch(context_id, bytes, restore, now);
            shard.stats.refetches += 1;
            shard.stats.busy_secs += ready - now;
            shard.busy = true;
            let ctx = SpanCtx::new(*synthetic_id, batch[0].tenant as u32, shard_id as u32);
            *synthetic_id += 1;
            if let Some(p) = plan {
                p.batches.push(PlannedBatch {
                    shard: shard_id,
                    context_id,
                    work: PlannedWork::Refetch(PlannedRefetch {
                        trace_request: ctx.request,
                        tenant: batch[0].tenant,
                        bytes,
                    }),
                });
            }
            recorder.record_span_for(Stage::Request, ctx, now, ready, vec![("refetch", 1.0)]);
            recorder.record_span_for(
                Stage::Refetch,
                ctx,
                now,
                ready,
                vec![("bytes", bytes as f64)],
            );
            events.push(ready, Event::BatchDone { shard: shard_id });
            return;
        }

        // A batch degrades if any member crossed the watermark: under
        // saturation the whole transfer downshifts (the riders share it).
        let degraded = queries.iter().any(|r| r.degraded);
        let fec = self.config.fec_for(queries[0].tenant, degraded);
        // The streamer's per-chunk wire/decode spans nest under the batch
        // lead's request (the riders share the transfer; their own trees
        // still tile their full TTFT below).
        recorder.set_ctx(SpanCtx::new(
            queries[0].index as u64,
            queries[0].tenant as u32,
            shard_id as u32,
        ));
        let planning = plan.is_some();
        let mut chunk_work: Vec<PlannedChunk> = Vec::new();
        let outcome = shard.serve_batch_planned(
            context_id,
            degraded,
            now,
            &self.config,
            fec,
            recorder,
            planning.then_some(&mut chunk_work),
        );
        shard.stats.batches += 1;
        shard.stats.coalesced_requests += (batch.len() - 1) as u64;

        // Re-fetch riders: a *miss* re-fetched the whole context, which
        // satisfies them for free — but a cache *hit* served the resident
        // (repaired) bitstream without touching the link, so the rider's
        // missing bytes must still be pulled before the shard goes idle.
        let mut ready = outcome.ready;
        let (rider_bytes, rider_restore) = batch
            .iter()
            .filter_map(|q| match q.kind {
                EntryKind::Refetch {
                    bytes,
                    restore_quality,
                } => Some((bytes, restore_quality)),
                EntryKind::Query => None,
            })
            .fold((0u64, 0.0f64), |(b, q), (nb, nq)| (b + nb, q.max(nq)));
        let mut planned_rider = None;
        if rider_bytes > 0 && outcome.cache_hit {
            ready = shard.serve_refetch(context_id, rider_bytes, rider_restore, ready);
            shard.stats.refetches += 1;
            // The rider's pull runs past the queries' first tokens, so it
            // traces as its own synthetic request, not under a query root.
            let ctx = SpanCtx::new(*synthetic_id, queries[0].tenant as u32, shard_id as u32);
            *synthetic_id += 1;
            planned_rider = Some(PlannedRefetch {
                trace_request: ctx.request,
                tenant: queries[0].tenant,
                bytes: rider_bytes,
            });
            recorder.record_span_for(
                Stage::Request,
                ctx,
                outcome.ready,
                ready,
                vec![("refetch", 1.0)],
            );
            recorder.record_span_for(
                Stage::Refetch,
                ctx,
                outcome.ready,
                ready,
                vec![("bytes", rider_bytes as f64)],
            );
        }
        shard.stats.busy_secs += ready - now;
        shard.busy = true;
        events.push(ready, Event::BatchDone { shard: shard_id });

        // Wire the repair loop: bytes the lossy link never delivered are
        // re-requested through the *same* admission path as first fetches
        // — under overload the re-fetch is degraded or shed like any
        // arrival, and the context simply stays at its repaired quality.
        if outcome.lost_bytes > 0 && self.config.repair == RepairPolicy::Refetch {
            let decision = shard.queues.push(QueuedRequest {
                index: usize::MAX,
                tenant: queries[0].tenant,
                context_id,
                arrival: outcome.ready,
                prompt_tokens: 0,
                degraded: false,
                kind: EntryKind::Refetch {
                    bytes: outcome.lost_bytes,
                    restore_quality: outcome.restore_quality,
                },
            });
            recorder.instant(
                Stage::RepairLadder,
                outcome.ready,
                vec![
                    ("lost_bytes", outcome.lost_bytes as f64),
                    ("shed", f64::from(u8::from(decision == Admission::Shed))),
                ],
            );
            if decision == Admission::Shed {
                shard.stats.refetch_shed += 1;
            }
        }

        let coalesced = batch.len() > 1;
        if let Some(p) = plan {
            p.batches.push(PlannedBatch {
                shard: shard_id,
                context_id,
                work: PlannedWork::Query {
                    cache_hit: outcome.cache_hit,
                    degraded,
                    coalesced,
                    quality: outcome.quality,
                    chunks: chunk_work,
                    queries: queries
                        .iter()
                        .map(|q| PlannedQuery {
                            request: q.index,
                            tenant: q.tenant,
                            prompt_tokens: q.prompt_tokens,
                        })
                        .collect(),
                    rider: planned_rider,
                },
            });
        }
        let load_stage = if outcome.cache_hit {
            Stage::CacheDecode
        } else {
            Stage::StoreFetch
        };
        for q in &queries {
            let prefill = q.prompt_tokens as f64 * self.config.recompute_sec_per_token;
            let finish = outcome.ready + prefill;
            // The request's span tree tiles its TTFT exactly:
            // [arrival, now] queued + [now, ready] loading + [ready,
            // finish] prefilling, under one root per request.
            let ctx = SpanCtx::new(q.index as u64, q.tenant as u32, shard_id as u32);
            recorder.record_span_for(
                Stage::Request,
                ctx,
                q.arrival,
                finish,
                vec![("ttft", finish - q.arrival), ("quality", outcome.quality)],
            );
            recorder.record_span_for(Stage::QueueWait, ctx, q.arrival, now, Vec::new());
            recorder.record_span_for(
                load_stage,
                ctx,
                now,
                outcome.ready,
                vec![("coalesced", f64::from(u8::from(coalesced)))],
            );
            recorder.record_span_for(
                Stage::Prefill,
                ctx,
                outcome.ready,
                finish,
                vec![("tokens", q.prompt_tokens as f64)],
            );
            outcomes[q.index] = Some(RequestOutcome {
                tenant: q.tenant,
                context_id,
                shard: shard_id,
                arrival: q.arrival,
                disposition: Disposition::Completed {
                    ttft: finish - q.arrival,
                    quality: outcome.quality,
                    degraded,
                    coalesced,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachegen_net::BandwidthTrace;
    use cachegen_workloads::{workload_rng, SharedPrefixGen};

    fn tiny_cluster(config: ServingConfig, bandwidth_bps: f64) -> ServingCluster {
        let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
        let links = (0..config.num_shards)
            .map(|_| Link::new(BandwidthTrace::constant(bandwidth_bps), 0.0))
            .collect();
        ServingCluster::build(
            SimModelConfig::tiny(42),
            EngineConfig::default(),
            config,
            &profile,
            links,
        )
    }

    fn store_and_run(
        cluster: &mut ServingCluster,
        seed: u64,
        n_requests: usize,
        rate_hz: f64,
    ) -> ServingReport {
        let gen = SharedPrefixGen::new(64, 6, 90);
        let workload = gen.generate(
            &mut workload_rng(seed),
            cluster.config().num_tenants,
            n_requests,
            rate_hz,
        );
        for (id, tokens) in &workload.documents {
            cluster.store_context(*id, tokens);
        }
        cluster.run(&workload.requests)
    }

    #[test]
    fn run_resolves_every_request() {
        let mut c = tiny_cluster(ServingConfig::default(), 5e6);
        let report = store_and_run(&mut c, 1, 60, 20.0);
        assert_eq!(report.outcomes.len(), 60);
        assert!(report.completed().count() + report.shed_count() == 60);
        assert!(report.makespan > 0.0);
        for o in report.completed() {
            assert!(o.ttft().unwrap() > 0.0);
        }
    }

    #[test]
    fn same_seed_same_report() {
        let run = || {
            let mut c = tiny_cluster(ServingConfig::default(), 5e6);
            store_and_run(&mut c, 7, 80, 30.0)
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes, b.outcomes, "virtual-time replay must be exact");
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn contexts_route_to_owning_shards() {
        let mut c = tiny_cluster(ServingConfig::default(), 5e6);
        let report = store_and_run(&mut c, 3, 40, 10.0);
        for o in &report.outcomes {
            assert_eq!(o.shard, c.shard_of(o.context_id));
        }
        // With 6 documents and 2 shards, both shards should see traffic.
        let shards_used: std::collections::BTreeSet<usize> =
            report.outcomes.iter().map(|o| o.shard).collect();
        assert!(shards_used.len() >= 2, "placement collapsed to one shard");
    }

    #[test]
    fn hot_documents_hit_the_cache() {
        let mut c = tiny_cluster(ServingConfig::default(), 5e6);
        let report = store_and_run(&mut c, 5, 120, 10.0);
        let hits: u64 = report.shards.iter().map(|s| s.cache.hits).sum();
        assert!(hits > 20, "Zipf reuse should hit the local cache: {hits}");
    }

    #[test]
    fn second_run_reports_only_its_own_activity() {
        let mut c = tiny_cluster(ServingConfig::default(), 5e6);
        let first = store_and_run(&mut c, 1, 60, 20.0);
        let second = store_and_run(&mut c, 1, 60, 20.0);
        for (i, s) in second.shards.iter().enumerate() {
            // One cache lookup per batch: cumulative counters would break
            // this equality on the second run.
            assert_eq!(
                s.cache.hits + s.cache.misses,
                s.batches,
                "shard {i} cache stats leaked across runs"
            );
            assert!(
                s.utilization(second.makespan) <= 1.0 + 1e-9,
                "shard {i} utilization {} exceeds 100%",
                s.utilization(second.makespan)
            );
        }
        // The warm cache carries over by design: the replay misses less.
        let misses = |r: &ServingReport| r.shards.iter().map(|s| s.cache.misses).sum::<u64>();
        assert!(misses(&second) < misses(&first));
    }

    #[test]
    fn lossy_links_trigger_refetches_that_restore_cached_quality() {
        use cachegen_net::PacketFaults;
        let config = ServingConfig {
            repair: RepairPolicy::Refetch,
            retransmit_budget: 0,
            ..ServingConfig::default()
        };
        let build = || {
            let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
            let links = (0..config.num_shards)
                .map(|s| {
                    Link::new(BandwidthTrace::constant(5e6), 0.0)
                        .with_packet_faults(PacketFaults::loss(0.25), 100 + s as u64)
                })
                .collect();
            ServingCluster::build(
                SimModelConfig::tiny(42),
                EngineConfig::default(),
                config.clone(),
                &profile,
                links,
            )
        };
        let mut c = build();
        let report = store_and_run(&mut c, 11, 80, 10.0);
        let lost: u64 = report.shards.iter().map(|s| s.lost_bytes).sum();
        let refetched: u64 = report.shards.iter().map(|s| s.refetched_bytes).sum();
        let refetches: u64 = report.shards.iter().map(|s| s.refetches).sum();
        assert!(lost > 0, "25% packet loss must lose bytes");
        assert!(
            refetches > 0 && refetched > 0,
            "refetch policy must pull the holes back: {refetches} batches, {refetched} bytes"
        );
        // Damaged first fetches are quality-penalized (below the whole
        // level-quality table) until their re-fetch lands.
        let min_q = report
            .completed()
            .filter_map(|o| match o.disposition {
                Disposition::Completed { quality, .. } => Some(quality),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_q < 0.86,
            "some request must observe repaired (penalized) quality, min {min_q}"
        );
        // Deterministic replay, loss and all.
        let mut c2 = build();
        let again = store_and_run(&mut c2, 11, 80, 10.0);
        assert_eq!(report.outcomes, again.outcomes);

        // A warm re-run hits the cache; the refetch restored the cached
        // entries, so hit quality is back at the full level table.
        let warm = store_and_run(&mut c, 11, 80, 10.0);
        let warm_min = warm
            .completed()
            .filter_map(|o| match o.disposition {
                Disposition::Completed { quality, .. } => Some(quality),
                _ => None,
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            warm_min >= min_q,
            "restored caches must not serve worse than the damaged run: {warm_min} vs {min_q}"
        );
    }

    #[test]
    fn refetch_rider_on_cache_hit_still_pulls_the_missing_bytes() {
        use cachegen_net::PacketFaults;
        use cachegen_workloads::ServingRequest;
        // One shard, lossy link, Refetch policy. The first request misses
        // and loses bytes (queuing a re-fetch); two more same-context
        // requests arrive while the shard is busy, so the re-fetch rides
        // a query-headed batch that *hits* the cache — the rider must
        // still be served, not silently dropped.
        let config = ServingConfig {
            num_shards: 1,
            num_tenants: 1,
            repair: RepairPolicy::Refetch,
            retransmit_budget: 0,
            ..ServingConfig::default()
        };
        let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
        let links = vec![Link::new(BandwidthTrace::constant(5e6), 0.0)
            .with_packet_faults(PacketFaults::loss(0.3), 5)];
        let mut c = ServingCluster::build(
            SimModelConfig::tiny(42),
            EngineConfig::default(),
            config,
            &profile,
            links,
        );
        let ctx: Vec<usize> = (0..90).map(|i| (i * 3) % 64).collect();
        c.store_context(0, &ctx);
        let req = |arrival: f64| ServingRequest {
            arrival,
            tenant: 0,
            context_id: 0,
            prompt: vec![1, 2, 3, 4],
        };
        let report = c.run(&[req(0.0), req(0.001), req(0.002)]);
        let s = &report.shards[0];
        assert!(s.lost_bytes > 0, "30% loss must lose bytes (seeded)");
        assert!(
            s.refetches >= 1 && s.refetched_bytes >= s.lost_bytes,
            "the re-fetch rider must be served, not dropped: {} refetches, {} bytes",
            s.refetches,
            s.refetched_bytes
        );
        // Later requests coalesced onto cache hits; their recorded quality
        // is the repaired one, but the cached entry is restored for the
        // future (a warm re-run serves full level quality).
        let warm = c.run(&[req(0.0)]);
        let Disposition::Completed { quality, .. } = warm.outcomes[0].disposition else {
            panic!("warm hit must complete");
        };
        assert!(
            quality > 0.9,
            "restored cache must serve undamaged quality, got {quality}"
        );
    }

    #[test]
    fn fec_for_resolves_degraded_then_tenant_then_default() {
        let cfg = ServingConfig {
            fec_overhead: FecOverhead::Uniform(8),
            tenant_fec: vec![None, Some(FecOverhead::Uniform(4)), None],
            degraded_fec: Some(FecOverhead::Off),
            ..ServingConfig::default()
        };
        // Normal admission: tenant override wins, else the cluster default.
        assert_eq!(cfg.fec_for(0, false), &FecOverhead::Uniform(8));
        assert_eq!(cfg.fec_for(1, false), &FecOverhead::Uniform(4));
        assert_eq!(
            cfg.fec_for(3, false),
            &FecOverhead::Uniform(8),
            "past the table"
        );
        // Degraded admission: parity shrinks regardless of tenant knob.
        assert_eq!(cfg.fec_for(0, true), &FecOverhead::Off);
        assert_eq!(cfg.fec_for(1, true), &FecOverhead::Off);
        // Without a degraded override, degraded batches keep their knob.
        let keep = ServingConfig {
            tenant_fec: vec![Some(FecOverhead::Uniform(4))],
            ..ServingConfig::default()
        };
        assert_eq!(keep.fec_for(0, true), &FecOverhead::Uniform(4));
    }

    #[test]
    fn fec_for_carries_rs_and_adaptive_knobs() {
        // Multi-erasure knobs flow through the same resolution chain as the
        // XOR ones: a tenant can pin RS(k, r) parity while the cluster
        // default adapts to the measured loss rate, and degraded admission
        // shrinks parity depth (r = 2 → 1) instead of dropping FEC outright.
        let cfg = ServingConfig {
            fec_overhead: FecOverhead::adaptive_default(),
            tenant_fec: vec![Some(FecOverhead::Rs { k: 10, r: 2 })],
            degraded_fec: Some(FecOverhead::Rs { k: 10, r: 1 }),
            ..ServingConfig::default()
        };
        assert_eq!(
            cfg.fec_for(0, false),
            &FecOverhead::Rs { k: 10, r: 2 },
            "tenant pins full double-parity RS"
        );
        assert_eq!(
            cfg.fec_for(1, false),
            &FecOverhead::adaptive_default(),
            "cluster default adapts (k, r) to the loss estimate"
        );
        // Degraded admission keeps the erasure code but sheds one repair
        // symbol per group — cheaper than r = 2, stronger than Off.
        assert_eq!(cfg.fec_for(0, true), &FecOverhead::Rs { k: 10, r: 1 });
        let (k, r) = cfg
            .fec_for(0, true)
            .params_for(0, None)
            .expect("degraded RS knob still groups");
        assert_eq!((k, r), (10, 1));
    }

    #[test]
    fn overload_coalesces_batches() {
        // Fire fast on a slow link: queues build while a batch is in
        // flight, and same-context arrivals ride together.
        let mut c = tiny_cluster(
            ServingConfig {
                shed_depth: 64,
                degrade_depth: 64,
                ..ServingConfig::default()
            },
            2e5,
        );
        let report = store_and_run(&mut c, 9, 100, 200.0);
        assert!(
            report.coalesced_count() > 10,
            "coalesced {} of 100",
            report.coalesced_count()
        );
        let batches: u64 = report.shards.iter().map(|s| s.batches).sum();
        assert!(
            batches < report.completed().count() as u64,
            "batching must fetch less often than once per request"
        );
    }
}
