//! The discrete-event virtual clock.
//!
//! The serving front shares one clock with `cachegen-net`'s virtual-time
//! link model: every event carries an `f64` time in seconds, and the queue
//! pops events in time order. Ties are broken by insertion sequence so a
//! run is a pure function of its inputs — the same trace always replays
//! the same schedule, which is what makes the acceptance criterion
//! ("same seed ⇒ same per-tenant TTFT percentiles") checkable.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Timed<E> {
    time: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Timed<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}

impl<E> Eq for Timed<E> {}

impl<E> PartialOrd for Timed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Timed<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (and, at equal times, the earliest-inserted) on top.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority event queue over virtual seconds.
pub struct EventQueue<E> {
    heap: BinaryHeap<Timed<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at virtual time `time` (seconds).
    pub fn push(&mut self, time: f64, event: E) {
        assert!(time.is_finite() && time >= 0.0, "bad event time {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Timed { time, seq, event });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.heap.pop().map(|t| (t.time, t.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(1.0, "first");
        q.push(1.0, "second");
        q.push(0.5, "zeroth");
        assert_eq!(q.pop(), Some((0.5, "zeroth")));
        assert_eq!(q.pop(), Some((1.0, "first")));
        assert_eq!(q.pop(), Some((1.0, "second")));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad event time")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }
}
