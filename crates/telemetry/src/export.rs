//! `BENCH_*.json` metrics snapshots and workspace-root discovery.
//!
//! The snapshot is the compact perf-trajectory artifact CI regenerates
//! on every run: all counters and gauges verbatim, plus
//! count/mean/min/max/p50/p90/p99 for every histogram — in registry
//! (name) order, so the file is byte-deterministic for a fixed seed.

use crate::json::JsonValue;
use crate::registry::MetricsRegistry;
use std::path::PathBuf;

/// Builds the snapshot document for a registry.
pub fn metrics_snapshot(registry: &MetricsRegistry) -> JsonValue {
    let counters = registry
        .counters()
        .map(|(k, v)| (k.to_string(), JsonValue::Number(v as f64)))
        .collect();
    let gauges = registry
        .gauges()
        .map(|(k, v)| (k.to_string(), JsonValue::Number(v)))
        .collect();
    let histograms = registry
        .histograms()
        .map(|(k, h)| {
            let mut members = vec![("count".to_string(), JsonValue::Number(h.count() as f64))];
            let stats: [(&str, Option<f64>); 6] = [
                ("mean", h.mean()),
                ("min", h.min()),
                ("max", h.max()),
                ("p50", h.quantile(50.0)),
                ("p90", h.quantile(90.0)),
                ("p99", h.quantile(99.0)),
            ];
            for (name, value) in stats {
                if let Some(v) = value {
                    members.push((name.to_string(), JsonValue::Number(v)));
                }
            }
            (k.to_string(), JsonValue::Object(members))
        })
        .collect();
    JsonValue::Object(vec![
        ("counters".to_string(), JsonValue::Object(counters)),
        ("gauges".to_string(), JsonValue::Object(gauges)),
        ("histograms".to_string(), JsonValue::Object(histograms)),
    ])
}

/// Serialized [`metrics_snapshot`] with a trailing newline.
pub fn metrics_snapshot_json(registry: &MetricsRegistry) -> String {
    let mut text = metrics_snapshot(registry).to_compact();
    text.push('\n');
    text
}

/// Finds the workspace root by walking up from the current directory to
/// the first `Cargo.toml` declaring `[workspace]`.
///
/// Cargo runs test/bench binaries with the *package* directory as CWD
/// but `cargo run` with the invocation directory, so artifacts like
/// `BENCH_codec.json` must anchor here to land in one stable place.
/// Falls back to the current directory if no workspace manifest is
/// found (e.g. the binary is run outside a checkout).
pub fn workspace_root() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_shape_and_determinism() {
        let mut r = MetricsRegistry::new();
        r.add("cachegen.net.wire_bytes", 4096);
        r.gauge("cachegen.serving.shed_rate", 0.125);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("cachegen.serving.ttft_ms", v);
        }
        let a = metrics_snapshot_json(&r);
        let b = metrics_snapshot_json(&r);
        assert_eq!(a, b, "byte-deterministic");
        assert!(a.ends_with('\n'));

        let doc = json::parse(a.trim_end()).unwrap();
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("cachegen.net.wire_bytes"))
                .and_then(JsonValue::as_f64),
            Some(4096.0)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("cachegen.serving.shed_rate"))
                .and_then(JsonValue::as_f64),
            Some(0.125)
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("cachegen.serving.ttft_ms"))
            .unwrap();
        assert_eq!(h.get("count").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(h.get("mean").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(h.get("min").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(h.get("max").and_then(JsonValue::as_f64), Some(4.0));
        assert!(h.get("p50").is_some() && h.get("p99").is_some());
    }

    #[test]
    fn empty_histogram_omits_stats() {
        let r = MetricsRegistry::new();
        let doc = json::parse(metrics_snapshot_json(&r).trim_end()).unwrap();
        assert_eq!(doc.get("histograms"), Some(&JsonValue::Object(Vec::new())));
    }

    #[test]
    fn workspace_root_finds_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
    }
}
