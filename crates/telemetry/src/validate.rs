//! Structural validation of an exported Chrome trace.
//!
//! Shared by the CI smoke binary (`trace_check`) and the determinism
//! tests: parse the JSON, then check every duration event is
//! well-formed (`dur >= 0`, tagged with a request) and every non-root
//! span nests inside the `request` root span of the same request.

use crate::json::{self, JsonValue};

/// Timestamp slack in microseconds when checking containment — covers
/// `seconds → µs` float rounding, nothing more.
const TOLERANCE_US: f64 = 1e-3;

/// Summary of a validated trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// `"ph":"X"` duration events checked.
    pub spans: usize,
    /// `"ph":"i"` instant events seen.
    pub instants: usize,
    /// Distinct requests with a `request` root span.
    pub requests: usize,
}

/// Validates trace-JSON text; returns a summary or the first error.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "missing traceEvents array".to_string())?;

    struct Ev<'a> {
        name: &'a str,
        ts: f64,
        dur: f64,
        request: f64,
    }

    let mut spans: Vec<Ev<'_>> = Vec::new();
    let mut summary = TraceSummary::default();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => {}
            "i" => summary.instants += 1,
            "X" => {
                let name = ev
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: missing name"))?;
                let ts = ev
                    .get("ts")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: missing ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i}: missing dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} ({name}): dur {dur} < 0 — end < start"));
                }
                let request = ev
                    .get("args")
                    .and_then(|a| a.get("request"))
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("event {i} ({name}): missing args.request"))?;
                spans.push(Ev {
                    name,
                    ts,
                    dur,
                    request,
                });
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    summary.spans = spans.len();

    // Collect each request's root span, then check containment.
    let mut roots: Vec<(f64, f64, f64)> = Vec::new(); // (request, ts, end)
    for ev in &spans {
        if ev.name == "request" {
            if roots.iter().any(|&(r, _, _)| r == ev.request) {
                return Err(format!("request {} has two root spans", ev.request));
            }
            roots.push((ev.request, ev.ts, ev.ts + ev.dur));
        }
    }
    summary.requests = roots.len();

    for ev in &spans {
        if ev.name == "request" {
            continue;
        }
        let (_, root_ts, root_end) = roots
            .iter()
            .find(|&&(r, _, _)| r == ev.request)
            .ok_or_else(|| {
                format!(
                    "span {:?} of request {} has no request root span",
                    ev.name, ev.request
                )
            })?;
        if ev.ts < root_ts - TOLERANCE_US || ev.ts + ev.dur > root_end + TOLERANCE_US {
            return Err(format!(
                "span {:?} [{}, {}] escapes request {} root [{root_ts}, {root_end}]",
                ev.name,
                ev.ts,
                ev.ts + ev.dur,
                ev.request
            ));
        }
    }

    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace_json;
    use crate::span::{Span, SpanCtx, Stage};

    fn span(stage: Stage, request: u64, start: f64, end: f64) -> Span {
        Span {
            stage,
            ctx: SpanCtx::new(request, 0, 0),
            start,
            end,
            args: Vec::new(),
        }
    }

    #[test]
    fn valid_trace_passes() {
        let spans = vec![
            span(Stage::Request, 0, 0.0, 1.0),
            span(Stage::QueueWait, 0, 0.0, 0.2),
            span(Stage::StoreFetch, 0, 0.2, 0.8),
            span(Stage::Prefill, 0, 0.8, 1.0),
            span(Stage::Request, 1, 0.5, 2.0),
            span(Stage::Prefill, 1, 1.5, 2.0),
        ];
        let s = validate_chrome_trace(&chrome_trace_json(&spans, &[])).unwrap();
        assert_eq!(s.spans, 6);
        assert_eq!(s.requests, 2);
    }

    #[test]
    fn orphan_span_fails() {
        let spans = vec![
            span(Stage::Request, 0, 0.0, 1.0),
            span(Stage::Prefill, 7, 0.2, 0.4), // request 7 has no root
        ];
        let err = validate_chrome_trace(&chrome_trace_json(&spans, &[])).unwrap_err();
        assert!(err.contains("no request root"), "{err}");
    }

    #[test]
    fn escaping_span_fails() {
        let spans = vec![
            span(Stage::Request, 0, 0.0, 1.0),
            span(Stage::Prefill, 0, 0.9, 1.5), // ends after the root
        ];
        let err = validate_chrome_trace(&chrome_trace_json(&spans, &[])).unwrap_err();
        assert!(err.contains("escapes"), "{err}");
    }

    #[test]
    fn negative_duration_fails() {
        let text = r#"{"traceEvents":[{"name":"prefill","ph":"X","ts":5,"dur":-1,"pid":0,"tid":0,"args":{"request":0}}]}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn unparseable_fails() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
