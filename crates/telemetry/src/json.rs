//! A tiny deterministic JSON tree: writer + recursive-descent parser.
//!
//! Object members are a `Vec` of pairs, so the writer emits keys in
//! exactly the order the exporter inserted them — combined with Rust's
//! shortest-roundtrip `f64` formatting this makes every export
//! byte-deterministic for a fixed seed. The parser exists for the
//! `trace_check` smoke tool and the round-trip tests; it accepts
//! standard JSON (no comments, no trailing commas).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values must not reach the writer).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match), else `None`.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) — the deterministic form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `n` using Rust's shortest-roundtrip formatting; integral
/// values within `i64` range print without a fractional part.
fn write_number(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "non-finite numbers are not valid JSON");
    if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; returns a message describing the first error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let end = start + 4;
                            if end > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[start..end])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed by our exports;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end - 1;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    if let Ok(chunk) = std::str::from_utf8(&rest[..len.min(rest.len())]) {
                        s.push_str(chunk);
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.consume(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_compact_and_ordered() {
        let v = JsonValue::Object(vec![
            ("b".to_string(), JsonValue::Number(1.0)),
            ("a".to_string(), JsonValue::Number(0.5)),
            (
                "list".to_string(),
                JsonValue::Array(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        // Keys stay in insertion order — not sorted.
        assert_eq!(v.to_compact(), r#"{"b":1,"a":0.5,"list":[true,null]}"#);
    }

    #[test]
    fn round_trip_parse_write() {
        let text = r#"{"name":"wire_delivery","ts":1234.5,"args":{"bytes":4096},"ok":true,"x":null,"e":1e-9}"#;
        let v = parse(text).unwrap();
        let again = parse(&v.to_compact()).unwrap();
        assert_eq!(v, again);
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("wire_delivery")
        );
        assert_eq!(v.get("ts").and_then(JsonValue::as_f64), Some(1234.5));
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("bytes"))
                .and_then(JsonValue::as_f64),
            Some(4096.0)
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = JsonValue::String("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_compact();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn numbers_integral_and_float() {
        assert_eq!(JsonValue::Number(3.0).to_compact(), "3");
        assert_eq!(JsonValue::Number(-2.0).to_compact(), "-2");
        assert_eq!(JsonValue::Number(0.125).to_compact(), "0.125");
        let parsed = parse("-12.5e2").unwrap();
        assert_eq!(parsed.as_f64(), Some(-1250.0));
    }
}
