//! CI smoke tool: validate exported Chrome traces.
//!
//! Usage: `trace_check <trace.json>...` — parses each file and checks
//! every span has `dur >= 0`, carries `args.request`, and nests inside
//! the `request` root span of the same request. Exits non-zero on the
//! first structural problem so the CI step fails loudly.

use cachegen_telemetry::validate_chrome_trace;
use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check <trace.json>...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("trace_check: {path}: {err}");
                failed = true;
                continue;
            }
        };
        match validate_chrome_trace(&text) {
            Ok(summary) => {
                println!(
                    "trace_check: {path}: ok ({} spans, {} instants, {} requests)",
                    summary.spans, summary.instants, summary.requests
                );
            }
            Err(err) => {
                eprintln!("trace_check: {path}: INVALID: {err}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
