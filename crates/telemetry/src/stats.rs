//! Shared summary-statistic helpers.
//!
//! This is the single home for the nearest-rank percentile that
//! `cachegen-serving` and the bench harness previously each carried a
//! copy of. Both call sites now route here, so the semantics are pinned
//! once (see the small-N tests below).

/// Nearest-rank percentile of `samples` (`p` in `[0, 100]`).
///
/// Sorts a copy with `f64::total_cmp` (total order, so NaN cannot
/// poison the sort) and returns the element at rank
/// `ceil(p/100 · n)`, 1-indexed — the classic nearest-rank definition:
/// the smallest sample ≥ `p` percent of the distribution. Returns
/// `None` on an empty slice.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Arithmetic mean of `samples`, or `None` on an empty slice.
pub fn mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().sum::<f64>() / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Pins nearest-rank semantics at small N — the contract both former
    // call sites (serving metrics, bench harness) must agree on.
    #[test]
    fn percentile_nearest_rank_small_n() {
        let one = [42.0];
        assert_eq!(percentile(&one, 0.0), Some(42.0));
        assert_eq!(percentile(&one, 50.0), Some(42.0));
        assert_eq!(percentile(&one, 100.0), Some(42.0));

        let four = [10.0, 20.0, 30.0, 40.0];
        // ceil(0.25 * 4) = 1 → first element.
        assert_eq!(percentile(&four, 25.0), Some(10.0));
        // ceil(0.50 * 4) = 2 → second element (not an interpolation).
        assert_eq!(percentile(&four, 50.0), Some(20.0));
        // ceil(0.99 * 4) = 4 → last element.
        assert_eq!(percentile(&four, 99.0), Some(40.0));
        assert_eq!(percentile(&four, 100.0), Some(40.0));

        let five = [5.0, 1.0, 4.0, 2.0, 3.0]; // unsorted input
        assert_eq!(percentile(&five, 50.0), Some(3.0));
        assert_eq!(percentile(&five, 90.0), Some(5.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn mean_small_n() {
        assert_eq!(mean(&[2.0]), Some(2.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
    }
}
