//! Deterministic telemetry for the CacheGen workspace.
//!
//! This crate is the measurement substrate the request path reports
//! through: request-lifecycle [`Span`]s stamped in *virtual* time (the
//! clock is injected, so the `cachegen-analyze` no-wall-clock gate
//! applies here too), a counter/gauge/histogram [`MetricsRegistry`],
//! and two byte-deterministic exporters — Chrome trace-event JSON
//! (loadable in Perfetto, one process per shard, one thread per tenant)
//! and compact `BENCH_*.json` metrics snapshots.
//!
//! Everything funnels through one handle, the [`Recorder`]. Hot paths
//! take `&Recorder` and pay nothing when handed the disabled [`NOOP`]:
//! every method starts with a branch on an `Option` that is `None` for
//! the no-op, so benches show no regression with tracing off.
//!
//! Metric names follow `cachegen.<crate>.<metric>`, e.g.
//! `cachegen.net.wire_bytes` or `cachegen.serving.ttft_ms`.
//!
//! Pure std, zero dependencies, by design: the crate must never pull
//! simulator code in (every layer depends on it). The promise that only
//! the [`Clock`] implementation swaps is now cashed in: the OS-thread
//! execution backend records through the same [`Recorder`] built with
//! [`Recorder::new_wall`] (a [`WallClock`] in the sanctioned [`wall`]
//! module), so both backends export one span/metric taxonomy and differ
//! only in durations.

pub mod chrome;
pub mod export;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod stats;
pub mod validate;
pub mod wall;

pub use chrome::{chrome_trace, chrome_trace_json};
pub use export::{metrics_snapshot, metrics_snapshot_json, workspace_root};
pub use json::JsonValue;
pub use recorder::{Recorder, SpanGuard, NOOP};
pub use registry::{Histogram, MetricsRegistry};
pub use span::{Clock, InstantEvent, ManualClock, Span, SpanCtx, Stage};
pub use stats::{mean, percentile};
pub use validate::{validate_chrome_trace, TraceSummary};
pub use wall::WallClock;
