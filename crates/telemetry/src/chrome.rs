//! Chrome trace-event JSON export (loadable in Perfetto / `chrome://tracing`).
//!
//! Tracks: one process per shard (`pid = shard`), one thread per tenant
//! (`tid = tenant`), so Perfetto groups the timeline exactly like the
//! cluster topology. Spans become `"ph":"X"` complete events with
//! microsecond timestamps; instants become `"ph":"i"` thread-scoped
//! events. Every event carries `args.request` so a span tree can be
//! reassembled per request. Output is byte-deterministic: metadata in
//! `BTreeSet` order, then events in recording order, all through the
//! insertion-ordered JSON writer.

use crate::json::JsonValue;
use crate::span::{InstantEvent, Span};
use std::collections::BTreeSet;

const MICROS: f64 = 1e6;

fn args_value(request: u64, args: &[(&'static str, f64)]) -> JsonValue {
    let mut members = vec![("request".to_string(), JsonValue::Number(request as f64))];
    for (k, v) in args {
        members.push(((*k).to_string(), JsonValue::Number(*v)));
    }
    JsonValue::Object(members)
}

fn metadata_event(name: &str, pid: u32, tid: Option<u32>, label: String) -> JsonValue {
    let mut members = vec![
        ("name".to_string(), JsonValue::String(name.to_string())),
        ("ph".to_string(), JsonValue::String("M".to_string())),
        ("pid".to_string(), JsonValue::Number(pid as f64)),
    ];
    if let Some(tid) = tid {
        members.push(("tid".to_string(), JsonValue::Number(tid as f64)));
    }
    members.push((
        "args".to_string(),
        JsonValue::Object(vec![("name".to_string(), JsonValue::String(label))]),
    ));
    JsonValue::Object(members)
}

/// Builds the Chrome trace-event document for the recorded events.
pub fn chrome_trace(spans: &[Span], instants: &[InstantEvent]) -> JsonValue {
    let mut events = Vec::new();

    // Track metadata first: name the per-shard processes and per-tenant
    // threads so Perfetto shows "shard N" / "tenant M" instead of ids.
    let mut shards: BTreeSet<u32> = BTreeSet::new();
    let mut tracks: BTreeSet<(u32, u32)> = BTreeSet::new();
    for s in spans {
        shards.insert(s.ctx.shard);
        tracks.insert((s.ctx.shard, s.ctx.tenant));
    }
    for i in instants {
        shards.insert(i.ctx.shard);
        tracks.insert((i.ctx.shard, i.ctx.tenant));
    }
    for &shard in &shards {
        events.push(metadata_event(
            "process_name",
            shard,
            None,
            format!("shard {shard}"),
        ));
    }
    for &(shard, tenant) in &tracks {
        events.push(metadata_event(
            "thread_name",
            shard,
            Some(tenant),
            format!("tenant {tenant}"),
        ));
    }

    for s in spans {
        events.push(JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String(s.stage.name().to_string()),
            ),
            (
                "cat".to_string(),
                JsonValue::String(s.stage.category().to_string()),
            ),
            ("ph".to_string(), JsonValue::String("X".to_string())),
            ("ts".to_string(), JsonValue::Number(s.start * MICROS)),
            (
                "dur".to_string(),
                JsonValue::Number((s.end - s.start) * MICROS),
            ),
            ("pid".to_string(), JsonValue::Number(s.ctx.shard as f64)),
            ("tid".to_string(), JsonValue::Number(s.ctx.tenant as f64)),
            ("args".to_string(), args_value(s.ctx.request, &s.args)),
        ]));
    }
    for i in instants {
        events.push(JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String(i.stage.name().to_string()),
            ),
            (
                "cat".to_string(),
                JsonValue::String(i.stage.category().to_string()),
            ),
            ("ph".to_string(), JsonValue::String("i".to_string())),
            ("s".to_string(), JsonValue::String("t".to_string())),
            ("ts".to_string(), JsonValue::Number(i.at * MICROS)),
            ("pid".to_string(), JsonValue::Number(i.ctx.shard as f64)),
            ("tid".to_string(), JsonValue::Number(i.ctx.tenant as f64)),
            ("args".to_string(), args_value(i.ctx.request, &i.args)),
        ]));
    }

    JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(events)),
        (
            "displayTimeUnit".to_string(),
            JsonValue::String("ms".to_string()),
        ),
    ])
}

/// Serialized [`chrome_trace`] (compact, byte-deterministic).
pub fn chrome_trace_json(spans: &[Span], instants: &[InstantEvent]) -> String {
    chrome_trace(spans, instants).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::span::{SpanCtx, Stage};

    fn sample() -> (Vec<Span>, Vec<InstantEvent>) {
        let ctx = SpanCtx::new(0, 1, 0);
        let spans = vec![
            Span {
                stage: Stage::Request,
                ctx,
                start: 0.0,
                end: 0.010,
                args: vec![("ttft_ms", 10.0)],
            },
            Span {
                stage: Stage::StoreFetch,
                ctx,
                start: 0.001,
                end: 0.008,
                args: Vec::new(),
            },
        ];
        let instants = vec![InstantEvent {
            stage: Stage::FecRecovery,
            ctx,
            at: 0.004,
            args: vec![("packets", 2.0)],
        }];
        (spans, instants)
    }

    #[test]
    fn export_parses_and_has_tracks() {
        let (spans, instants) = sample();
        let text = chrome_trace_json(&spans, &instants);
        let doc = json::parse(&text).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        // 1 process_name + 1 thread_name + 2 spans + 1 instant.
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].get("ph").and_then(JsonValue::as_str), Some("M"));
        let x = &events[2];
        assert_eq!(x.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(x.get("name").and_then(JsonValue::as_str), Some("request"));
        assert_eq!(x.get("ts").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(x.get("dur").and_then(JsonValue::as_f64), Some(10000.0));
        assert_eq!(
            x.get("args")
                .and_then(|a| a.get("request"))
                .and_then(JsonValue::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn export_is_deterministic() {
        let (spans, instants) = sample();
        assert_eq!(
            chrome_trace_json(&spans, &instants),
            chrome_trace_json(&spans, &instants)
        );
    }
}
