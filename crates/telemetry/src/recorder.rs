//! The [`Recorder`]: the single handle the pipeline threads around.
//!
//! A recorder is either *enabled* (owns a clock, a span log, and a
//! metrics registry behind one mutex) or the zero-cost [`NOOP`]
//! (`inner: None` — every call is a branch on an `Option` and returns
//! immediately, so instrumented hot paths cost nothing when tracing is
//! off). Spans can be recorded explicitly with start/end times (the
//! discrete-event simulator knows both) or via the RAII [`SpanGuard`]
//! stamped from the injected [`ManualClock`].

use crate::registry::MetricsRegistry;
use crate::span::{Clock, InstantEvent, ManualClock, Span, SpanCtx, Stage};
use crate::wall::WallClock;
use std::sync::Mutex;

/// Mutable recorder state (span log + registry + ambient context).
#[derive(Debug, Default)]
struct State {
    spans: Vec<Span>,
    instants: Vec<InstantEvent>,
    registry: MetricsRegistry,
    ctx: SpanCtx,
}

/// The time source an enabled recorder stamps RAII spans with: the
/// virtual clock the simulator advances explicitly, or real elapsed
/// time for the OS-thread execution backend. Only the clock differs —
/// spans, instants, and the registry behave identically, which is what
/// makes the two backends' exports structurally comparable.
#[derive(Debug)]
enum ClockSource {
    /// Simulator-advanced virtual seconds (via [`Recorder::set_time`]).
    Manual(ManualClock),
    /// Monotonic wall-clock seconds since the recorder was created.
    Wall(WallClock),
}

impl Default for ClockSource {
    fn default() -> Self {
        ClockSource::Manual(ManualClock::default())
    }
}

/// Backing storage of an enabled recorder.
#[derive(Debug, Default)]
struct RecorderInner {
    clock: ClockSource,
    state: Mutex<State>,
}

/// A deterministic trace + metrics recorder (or the no-op when disabled).
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Option<RecorderInner>,
}

/// The shared disabled recorder: every method is a no-op.
pub static NOOP: Recorder = Recorder::disabled();

/// Locks a poisoned-or-not mutex; a panicking recording thread must not
/// take the whole trace down with it.
fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Recorder {
    /// An enabled recorder with its clock at zero.
    pub fn new() -> Self {
        Recorder {
            inner: Some(RecorderInner::default()),
        }
    }

    /// An enabled recorder stamping RAII spans with *wall-clock* seconds
    /// since this call — the recorder the OS-thread execution backend
    /// hands around. [`set_time`](Self::set_time) is ignored on a wall
    /// recorder: real time cannot be rewound, and a backend that tried
    /// would silently corrupt span containment.
    pub fn new_wall() -> Self {
        Recorder {
            inner: Some(RecorderInner {
                clock: ClockSource::Wall(WallClock::start()),
                state: Mutex::new(State::default()),
            }),
        }
    }

    /// The disabled recorder (`const`, so it can back the [`NOOP`] static).
    pub const fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this recorder stamps wall-clock time (false for the
    /// virtual clock and for the disabled recorder).
    pub fn is_wall(&self) -> bool {
        matches!(
            &self.inner,
            Some(RecorderInner {
                clock: ClockSource::Wall(_),
                ..
            })
        )
    }

    /// Advances the injected clock to virtual time `t` seconds. A no-op
    /// on a wall-clock recorder (real time is not settable).
    pub fn set_time(&self, t: f64) {
        if let Some(RecorderInner {
            clock: ClockSource::Manual(clock),
            ..
        }) = &self.inner
        {
            clock.set(t);
        }
    }

    /// Current time on the injected clock (0.0 when disabled).
    pub fn now(&self) -> f64 {
        match &self.inner {
            Some(inner) => match &inner.clock {
                ClockSource::Manual(clock) => clock.now(),
                ClockSource::Wall(clock) => clock.now(),
            },
            None => 0.0,
        }
    }

    /// Sets the ambient span context subsequent ctx-less records attach to.
    pub fn set_ctx(&self, ctx: SpanCtx) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).ctx = ctx;
        }
    }

    /// The current ambient span context (default when disabled).
    pub fn ctx(&self) -> SpanCtx {
        match &self.inner {
            Some(inner) => lock(&inner.state).ctx,
            None => SpanCtx::default(),
        }
    }

    /// Records a closed span under the ambient context.
    pub fn record_span(&self, stage: Stage, start: f64, end: f64) {
        self.record_span_args(stage, start, end, Vec::new());
    }

    /// Records a closed span with args under the ambient context.
    pub fn record_span_args(
        &self,
        stage: Stage,
        start: f64,
        end: f64,
        args: Vec<(&'static str, f64)>,
    ) {
        if let Some(inner) = &self.inner {
            let mut state = lock(&inner.state);
            let ctx = state.ctx;
            state.spans.push(Span {
                stage,
                ctx,
                start,
                end,
                args,
            });
        }
    }

    /// Records a closed span under an explicit context.
    pub fn record_span_for(
        &self,
        stage: Stage,
        ctx: SpanCtx,
        start: f64,
        end: f64,
        args: Vec<(&'static str, f64)>,
    ) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).spans.push(Span {
                stage,
                ctx,
                start,
                end,
                args,
            });
        }
    }

    /// Records a zero-duration event under the ambient context.
    pub fn instant(&self, stage: Stage, at: f64, args: Vec<(&'static str, f64)>) {
        if let Some(inner) = &self.inner {
            let mut state = lock(&inner.state);
            let ctx = state.ctx;
            state.instants.push(InstantEvent {
                stage,
                ctx,
                at,
                args,
            });
        }
    }

    /// Records a zero-duration event under an explicit context.
    pub fn instant_for(&self, stage: Stage, ctx: SpanCtx, at: f64, args: Vec<(&'static str, f64)>) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).instants.push(InstantEvent {
                stage,
                ctx,
                at,
                args,
            });
        }
    }

    /// Opens a RAII span stamped from the injected clock; the span is
    /// recorded when the guard drops. Returns a guard even when
    /// disabled (the drop is then a no-op).
    pub fn span(&self, stage: Stage, ctx: SpanCtx) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            stage,
            ctx,
            start: self.now(),
            args: Vec::new(),
        }
    }

    /// Adds `delta` to a registry counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).registry.add(name, delta);
        }
    }

    /// Sets a registry gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).registry.gauge(name, value);
        }
    }

    /// Records a registry histogram sample.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.state).registry.observe(name, value);
        }
    }

    /// A copy of all spans recorded so far.
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => lock(&inner.state).spans.clone(),
            None => Vec::new(),
        }
    }

    /// A copy of all instant events recorded so far.
    pub fn instants(&self) -> Vec<InstantEvent> {
        match &self.inner {
            Some(inner) => lock(&inner.state).instants.clone(),
            None => Vec::new(),
        }
    }

    /// A snapshot of the metrics registry.
    pub fn registry_snapshot(&self) -> MetricsRegistry {
        match &self.inner {
            Some(inner) => lock(&inner.state).registry.clone(),
            None => MetricsRegistry::default(),
        }
    }

    /// Runs `f` against the live registry (no-op when disabled).
    pub fn with_registry(&self, f: impl FnOnce(&mut MetricsRegistry)) {
        if let Some(inner) = &self.inner {
            f(&mut lock(&inner.state).registry);
        }
    }
}

/// RAII guard returned by [`Recorder::span`]; records on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    stage: Stage,
    ctx: SpanCtx,
    start: f64,
    args: Vec<(&'static str, f64)>,
}

impl SpanGuard<'_> {
    /// Attaches a numeric arg to the span before it closes.
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.recorder.is_enabled() {
            self.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.recorder.is_enabled() {
            let args = std::mem::take(&mut self.args);
            self.recorder.record_span_for(
                self.stage,
                self.ctx,
                self.start,
                self.recorder.now(),
                args,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        NOOP.set_time(5.0);
        NOOP.record_span(Stage::Prefill, 0.0, 1.0);
        NOOP.instant(Stage::Admission, 0.5, vec![("shed", 1.0)]);
        NOOP.add("c", 3);
        NOOP.observe("h", 1.0);
        assert!(!NOOP.is_enabled());
        assert_eq!(NOOP.now(), 0.0);
        assert!(NOOP.spans().is_empty());
        assert!(NOOP.instants().is_empty());
        assert_eq!(NOOP.registry_snapshot().counter("c"), None);
    }

    #[test]
    fn raii_span_stamps_clock_times() {
        let r = Recorder::new();
        let ctx = SpanCtx::new(7, 1, 0);
        r.set_time(2.0);
        {
            let mut g = r.span(Stage::StoreFetch, ctx);
            g.arg("bytes", 128.0);
            r.set_time(3.5);
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::StoreFetch);
        assert_eq!(spans[0].ctx, ctx);
        assert_eq!(spans[0].start, 2.0);
        assert_eq!(spans[0].end, 3.5);
        assert_eq!(spans[0].args, vec![("bytes", 128.0)]);
    }

    #[test]
    fn ambient_ctx_attaches_to_ctxless_records() {
        let r = Recorder::new();
        let ctx = SpanCtx::new(3, 2, 1);
        r.set_ctx(ctx);
        r.record_span(Stage::WireDelivery, 1.0, 2.0);
        r.instant(Stage::FecRecovery, 1.5, Vec::new());
        assert_eq!(r.spans()[0].ctx, ctx);
        assert_eq!(r.instants()[0].ctx, ctx);
    }

    #[test]
    fn wall_recorder_ignores_set_time_and_moves_forward() {
        let r = Recorder::new_wall();
        assert!(r.is_enabled() && r.is_wall());
        assert!(!Recorder::new().is_wall());
        assert!(!NOOP.is_wall());
        let before = r.now();
        r.set_time(1_000.0); // must be a no-op on real time
        let after = r.now();
        assert!(before >= 0.0 && after >= before);
        assert!(after < 100.0, "set_time must not jump a wall clock");
        // The RAII span API stamps non-decreasing wall times.
        let ctx = SpanCtx::new(1, 0, 0);
        drop(r.span(Stage::Prefill, ctx));
        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        assert!(spans[0].end >= spans[0].start);
    }

    #[test]
    fn registry_via_recorder() {
        let r = Recorder::new();
        r.add("cachegen.test.count", 2);
        r.add("cachegen.test.count", 3);
        r.gauge("cachegen.test.g", 1.5);
        r.observe("cachegen.test.h", 4.0);
        let snap = r.registry_snapshot();
        assert_eq!(snap.counter("cachegen.test.count"), Some(5));
        assert_eq!(snap.gauge_value("cachegen.test.g"), Some(1.5));
        assert_eq!(snap.histogram("cachegen.test.h").unwrap().count(), 1);
    }
}
