//! The wall-clock [`Clock`]: real elapsed seconds for the OS-thread
//! execution backend.
//!
//! This module is the workspace's *only* sanctioned wall-clock time
//! source — the `cachegen-analyze` `no-wall-clock` rule exempts exactly
//! this file (and the bench crate), the same way `no-raw-spawn` exempts
//! the approved executor modules. Everything the simulator computes
//! stays on the virtual [`ManualClock`](crate::ManualClock); a recorder
//! built on [`WallClock`] measures how long the real backend *actually*
//! took, in the same span/metric taxonomy, without ever feeding wall
//! time back into scheduling decisions.
//!
//! Times are seconds since the clock's construction, so traces from
//! both clock kinds start near zero and diff cleanly in Perfetto.

use crate::span::Clock;
use std::time::Instant;

/// Monotonic wall-clock seconds since construction.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose zero is now.
    pub fn start() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::start()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic_from_zero() {
        let clock = WallClock::start();
        let a = clock.now();
        let b = clock.now();
        assert!(a >= 0.0, "time since construction cannot be negative");
        assert!(b >= a, "monotonic clock went backwards: {a} -> {b}");
    }

    #[test]
    fn independent_clocks_have_independent_origins() {
        let first = WallClock::start();
        // Burn a little real time so the second origin is later.
        let mut sink = 0u64;
        for i in 0..50_000u64 {
            sink = sink.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(sink);
        let second = WallClock::start();
        assert!(
            first.now() >= second.now(),
            "the older clock must have accumulated at least as much elapsed time"
        );
    }
}
