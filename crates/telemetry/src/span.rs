//! Request-lifecycle spans and the injected clock they are stamped with.
//!
//! A [`Span`] is one closed `[start, end]` interval of virtual time
//! attributed to a [`Stage`] of one request's lifecycle. The stages tile
//! a completed request's TTFT exactly: `queue_wait` + (`store_fetch` |
//! `cache_decode`) + `prefill` sum to `finish − arrival`, with the
//! transport-level stages (`wire_delivery`, `chunk_decode`,
//! `text_recompute`, FEC/repair events) nested inside the fetch. The
//! [`Clock`] trait is the seam that lets the same span API run against
//! the discrete-event virtual clock today and a wall-clock execution
//! backend later (see ROADMAP's execution-engine item).

use std::sync::atomic::{AtomicU64, Ordering};

/// A stage of the request lifecycle (the span/event taxonomy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Root span of one request: `[arrival, first token ready]`.
    Request,
    /// Waiting in a per-tenant admission queue for the shard to go idle.
    QueueWait,
    /// Admission decision instant (degraded or shed — see event args).
    Admission,
    /// Store→shard fetch of a batch's KV bitstreams (a cache miss).
    StoreFetch,
    /// Decoding a locally cached bitstream (a cache hit: no fetch).
    CacheDecode,
    /// One chunk's packets occupying the wire until its last arrival.
    WireDelivery,
    /// XOR-parity reconstruction instant (losses FEC made invisible).
    FecRecovery,
    /// Repair-policy reconstruction of holes the transport left.
    RepairLadder,
    /// GPU entropy-decode of one fetched chunk.
    ChunkDecode,
    /// GPU prefill-recompute of one text-fallback chunk.
    TextRecompute,
    /// Re-fetch of bytes a lossy transfer never delivered.
    Refetch,
    /// The query suffix's own prompt prefill after the context is ready.
    Prefill,
}

impl Stage {
    /// Stable event name used in exports (`snake_case`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::QueueWait => "queue_wait",
            Stage::Admission => "admission",
            Stage::StoreFetch => "store_fetch",
            Stage::CacheDecode => "cache_decode",
            Stage::WireDelivery => "wire_delivery",
            Stage::FecRecovery => "fec_recovery",
            Stage::RepairLadder => "repair_ladder",
            Stage::ChunkDecode => "chunk_decode",
            Stage::TextRecompute => "text_recompute",
            Stage::Refetch => "refetch",
            Stage::Prefill => "prefill",
        }
    }

    /// The layer that emits the stage — the Chrome-trace category.
    pub fn category(self) -> &'static str {
        match self {
            Stage::Request | Stage::QueueWait | Stage::Admission | Stage::Prefill => "serving",
            Stage::StoreFetch | Stage::CacheDecode | Stage::Refetch => "shard",
            Stage::WireDelivery | Stage::FecRecovery => "transport",
            Stage::RepairLadder | Stage::ChunkDecode | Stage::TextRecompute => "decode",
        }
    }
}

/// Which request (and which shard/tenant track) a span belongs to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanCtx {
    /// Request identifier — the trace index of the request, or a
    /// synthetic id for work not tied to one arrival (e.g. re-fetches).
    pub request: u64,
    /// Tenant that issued the request (the Chrome-trace thread id).
    pub tenant: u32,
    /// Shard serving the request (the Chrome-trace process id).
    pub shard: u32,
}

impl SpanCtx {
    /// A context for request `request` on `shard` from `tenant`.
    pub fn new(request: u64, tenant: u32, shard: u32) -> Self {
        SpanCtx {
            request,
            tenant,
            shard,
        }
    }
}

/// One closed interval of virtual time attributed to a lifecycle stage.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Lifecycle stage.
    pub stage: Stage,
    /// Owning request / track.
    pub ctx: SpanCtx,
    /// Virtual start time, seconds.
    pub start: f64,
    /// Virtual end time, seconds (`end >= start`).
    pub end: f64,
    /// Numeric annotations exported as Chrome-trace args.
    pub args: Vec<(&'static str, f64)>,
}

impl Span {
    /// Span duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A zero-duration event (shed/degrade decisions, FEC recoveries).
#[derive(Clone, Debug, PartialEq)]
pub struct InstantEvent {
    /// Lifecycle stage.
    pub stage: Stage,
    /// Owning request / track.
    pub ctx: SpanCtx,
    /// Virtual time of the event, seconds.
    pub at: f64,
    /// Numeric annotations exported as Chrome-trace args.
    pub args: Vec<(&'static str, f64)>,
}

/// A monotone time source the recorder stamps RAII spans with.
///
/// The virtual-clock backend is [`ManualClock`], advanced explicitly by
/// the discrete-event loop; a future wall-clock execution backend
/// implements this trait over real time (outside this crate — the
/// workspace determinism gate bans wall-clock sources here).
pub trait Clock {
    /// Current time in seconds.
    fn now(&self) -> f64;
}

/// An explicitly advanced clock (virtual seconds stored as `f64` bits).
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub const fn new() -> Self {
        ManualClock {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the current time (the event loop calls this per event pop).
    pub fn set(&self, t: f64) {
        self.bits.store(t.to_bits(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_round_trips_exactly() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        for t in [0.1, 1e-12, 4.75, 1e9] {
            c.set(t);
            assert_eq!(c.now(), t, "bit-exact round trip");
        }
    }

    #[test]
    fn stage_names_are_unique() {
        let all = [
            Stage::Request,
            Stage::QueueWait,
            Stage::Admission,
            Stage::StoreFetch,
            Stage::CacheDecode,
            Stage::WireDelivery,
            Stage::FecRecovery,
            Stage::RepairLadder,
            Stage::ChunkDecode,
            Stage::TextRecompute,
            Stage::Refetch,
            Stage::Prefill,
        ];
        let names: std::collections::BTreeSet<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), all.len());
        for s in all {
            assert!(!s.category().is_empty());
        }
    }
}
