//! A deterministic counter / gauge / histogram registry.
//!
//! Metric names follow the `cachegen.<crate>.<metric>` convention
//! (e.g. `cachegen.streamer.bytes_sent`). Everything is keyed through
//! `BTreeMap`s so snapshots iterate in one stable order — the
//! workspace's no-hash-iter gate applies to this crate.

use std::collections::BTreeMap;

/// Number of sub-buckets per power-of-two octave (top 3 mantissa bits).
const SUB_BUCKETS_PER_OCTAVE: u64 = 8;

/// A log-bucketed histogram over positive finite `f64` samples.
///
/// Buckets are derived from the sample's IEEE-754 exponent plus its top
/// three mantissa bits — 8 sub-buckets per octave, ≤ ~9% relative bucket
/// width — so bucketing is exact integer arithmetic: no `log`/`pow`
/// calls, identical on every platform. Exact `min`/`max`/`sum`/`count`
/// are tracked alongside for means and range reporting.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bucket key → sample count. Key is `exp << 3 | top-3 mantissa bits`.
    buckets: BTreeMap<u64, u64>,
    /// Total number of recorded samples (including zero / non-finite ones).
    count: u64,
    /// Exact sum of all recorded samples.
    sum: f64,
    /// Smallest recorded sample.
    min: f64,
    /// Largest recorded sample.
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket key for a strictly positive finite sample.
    fn key(v: f64) -> u64 {
        let bits = v.to_bits();
        let exp = (bits >> 52) & 0x7ff;
        let mantissa_top = (bits >> 49) & 0x7;
        exp * SUB_BUCKETS_PER_OCTAVE + mantissa_top
    }

    /// Lower bound of the bucket with the given key (inclusive).
    fn bucket_low(key: u64) -> f64 {
        let exp = key / SUB_BUCKETS_PER_OCTAVE;
        let mantissa_top = key % SUB_BUCKETS_PER_OCTAVE;
        f64::from_bits((exp << 52) | (mantissa_top << 49))
    }

    /// Upper bound of the bucket with the given key (exclusive).
    fn bucket_high(key: u64) -> f64 {
        Self::bucket_low(key + 1)
    }

    /// Records one sample. Non-positive or non-finite samples count
    /// toward `count`/`min`/`max`/`sum` but land in the zero bucket.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        let key = if v.is_finite() && v > 0.0 {
            Self::key(v)
        } else {
            0
        };
        *self.buckets.entry(key).or_insert(0) += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.sum / self.count as f64)
    }

    /// Nearest-rank quantile estimate from the bucket boundaries.
    ///
    /// Walks buckets in ascending order until the cumulative count
    /// reaches `ceil(p/100 · count)` and reports the midpoint of the
    /// bucket that crossed it, clamped to the exact observed
    /// `min`/`max` so single-bucket histograms stay exact.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (&key, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                if key == 0 {
                    return Some(self.min.max(0.0).min(self.max));
                }
                let mid = 0.5 * (Self::bucket_low(key) + Self::bucket_high(key));
                return Some(mid.max(self.min).min(self.max));
            }
        }
        Some(self.max)
    }
}

/// The workspace metrics registry: counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one histogram sample under `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of a gauge, if present.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one: counters add, gauges take
    /// the other's value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            let mine = self.histograms.entry(k.clone()).or_default();
            for (&key, &n) in &h.buckets {
                *mine.buckets.entry(key).or_insert(0) += n;
            }
            mine.count += h.count;
            mine.sum += h.sum;
            if h.min < mine.min {
                mine.min = h.min;
            }
            if h.max > mine.max {
                mine.max = h.max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_bounds_bracket_samples() {
        for v in [1e-6, 0.013, 0.5, 1.0, 1.5, 7.25, 1000.0, 3.9e8] {
            let key = Histogram::key(v);
            assert!(Histogram::bucket_low(key) <= v, "low <= {v}");
            assert!(v < Histogram::bucket_high(key), "{v} < high");
        }
    }

    #[test]
    fn histogram_bucket_relative_width_is_tight() {
        for v in [0.001, 0.02, 0.4, 3.0, 100.0] {
            let key = Histogram::key(v);
            let (lo, hi) = (Histogram::bucket_low(key), Histogram::bucket_high(key));
            assert!(hi / lo <= 1.0 + 1.0 / 8.0 + 1e-12, "≤ 12.5% wide at {v}");
        }
    }

    #[test]
    fn histogram_quantiles_track_percentiles() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        for &s in &samples {
            h.observe(s);
        }
        let p50 = h.quantile(50.0).unwrap();
        let p99 = h.quantile(99.0).unwrap();
        assert!((p50 - 50.0).abs() / 50.0 < 0.10, "p50 ≈ 50, got {p50}");
        assert!((p99 - 99.0).abs() / 99.0 < 0.10, "p99 ≈ 99, got {p99}");
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(0.1));
        assert_eq!(h.max(), Some(100.0));
    }

    #[test]
    fn histogram_single_sample_is_exact() {
        let mut h = Histogram::new();
        h.observe(0.042);
        assert_eq!(h.quantile(50.0), Some(0.042));
        assert_eq!(h.quantile(99.0), Some(0.042));
        assert_eq!(h.mean(), Some(0.042));
    }

    #[test]
    fn histogram_handles_zero_and_negative() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-1.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(-1.0));
        let q = h.quantile(50.0).unwrap();
        assert!((-1.0..=0.0).contains(&q));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        r.add("cachegen.net.wire_bytes", 10);
        r.add("cachegen.net.wire_bytes", 5);
        r.gauge("cachegen.serving.shed_rate", 0.25);
        r.observe("cachegen.serving.ttft_ms", 120.0);
        assert_eq!(r.counter("cachegen.net.wire_bytes"), Some(15));
        assert_eq!(r.gauge_value("cachegen.serving.shed_rate"), Some(0.25));
        assert_eq!(r.histogram("cachegen.serving.ttft_ms").unwrap().count(), 1);
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn registry_merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("c", 1);
        b.add("c", 2);
        a.observe("h", 1.0);
        b.observe("h", 2.0);
        b.gauge("g", 7.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), Some(3));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h").unwrap().sum(), 3.0);
        assert_eq!(a.gauge_value("g"), Some(7.0));
    }
}
