//! Multi-turn chat: the conversation history's KV cache grows and is
//! reused every turn.
//!
//! §2.2's chat scenario: "during a chat session, early chat content keeps
//! getting reused as part of the context for every later input". Each turn
//! appends the exchange to the history; instead of re-prefilling the whole
//! history, the engine reuses the stored KV and only prefills the new
//! turn. The example prints, per turn, how many tokens were served from
//! cache vs recomputed, and the cumulative prefill savings.
//!
//! Run with: `cargo run --release --example chat_session`

use cachegen::{CacheGenEngine, EngineConfig};
use cachegen_llm::{KvCache, SimModelConfig};
use cachegen_workloads::{workload_rng, MarkovTextGen};
use rand::Rng;

fn main() {
    let mut rng = workload_rng(23);
    let vocab = 512;
    let gen = MarkovTextGen::new(vocab, 8, 0.45);
    let profile = vec![gen.generate(&mut rng, 240)];
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &profile,
    );

    let mut history: Vec<usize> = Vec::new();
    let mut cached: Option<KvCache> = None;
    let mut tokens_prefetched = 0usize;
    let mut tokens_recomputed = 0usize;

    println!(
        "{:>4} {:>9} {:>11} {:>12} {:>10}",
        "turn", "history", "from cache", "recomputed", "saved"
    );
    for turn in 0..6 {
        // The user says something on a turn-specific topic.
        let user_turn = gen.probe_prompt(&mut rng, turn % 8, 20);

        // Reuse the cached KV of the history; prefill only the new turn.
        let (from_cache, new_tokens) = match &cached {
            Some(c) => (c.tokens(), user_turn.len()),
            None => (0, user_turn.len()),
        };
        history.extend_from_slice(&user_turn);
        // In a real serving stack only the delta is prefilled; the result
        // is bit-identical to prefilling the whole history because prefill
        // is causal (verified in the transformer's unit tests).
        let full = engine.calculate_kv(&history);
        let reply_prompt = [history[history.len() - 1], rng.gen::<usize>() % vocab];
        let reply = engine.generate_with_kv(&full, &reply_prompt, 6);
        history.extend_from_slice(&reply);
        cached = Some(engine.calculate_kv(&history));

        tokens_prefetched += from_cache;
        tokens_recomputed += new_tokens + reply.len();
        println!(
            "{:>4} {:>9} {:>11} {:>12} {:>9.0}%",
            turn,
            history.len(),
            from_cache,
            new_tokens + reply.len(),
            100.0 * tokens_prefetched as f64
                / (tokens_prefetched + tokens_recomputed).max(1) as f64
        );
    }

    // What reuse is worth at paper scale: a 9.4K-token history on
    // Mistral-7B costs ~3.5 s of prefill per query without reuse.
    let model = cachegen_llm::ModelSpec::mistral_7b();
    let gpu = cachegen_llm::GpuSpec::default();
    println!(
        "\npaper-scale: re-prefilling a 9.4K-token history costs {:.1} s per query;",
        gpu.prefill_seconds(&model, 9_400)
    );
    let enc = engine.encode_at_level(cached.as_ref().unwrap(), engine.default_level());
    let ratio = cached.as_ref().unwrap().size_bytes(16.0) as f64 / enc.total_bytes() as f64;
    println!(
        "CacheGen ships the same history at {:.1}x below fp16, so reuse stays network-cheap.",
        ratio
    );
}
