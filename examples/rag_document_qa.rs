//! RAG-style document QA: store a document's KV once, reuse it per query.
//!
//! The paper's motivating deployment (§2.2): a knowledge base of documents
//! lives on a storage service; when a query arrives, the relevant
//! document's *KV cache* — not its text — is fetched to the inference
//! server. This example stores a TriviaQA-like document with `store_kv`,
//! serves three queries with `get_kv` + `generate_with_kv`, and prints the
//! analytic TTFT comparison at real-model scale for the same workload.
//!
//! Run with: `cargo run --release --example rag_document_qa`

use cachegen::{CacheGenEngine, EngineConfig, LoadMethod, TtftModel};
use cachegen_codec::EncodedKv;
use cachegen_kvstore::FetchedChunk;
use cachegen_llm::{GpuSpec, ModelSpec, SimModelConfig};
use cachegen_net::trace::GBPS;
use cachegen_workloads::{workload_rng, Dataset};

fn main() {
    let mut rng = workload_rng(11);
    let vocab = 512;
    let profile: Vec<Vec<usize>> = (0..2)
        .map(|_| Dataset::TriviaQa.generate(&mut rng, vocab, 240).tokens)
        .collect();
    let engine = CacheGenEngine::build(
        SimModelConfig::mistral7b_sim(42),
        EngineConfig::default(),
        &profile,
    );

    // Ingest one document into the store (offline, once).
    let doc = Dataset::TriviaQa.generate(&mut rng, vocab, 240);
    let doc_id = 1001;
    let plan = engine.store_kv(doc_id, &doc.tokens);
    println!(
        "stored document {doc_id}: {} chunks × {} levels, {:.1} KB total (all versions)",
        plan.num_chunks(),
        plan.num_levels(),
        engine.store().context_bytes(doc_id).unwrap() as f64 / 1e3
    );

    // Serve three queries by fetching the stored bitstreams.
    let level = engine.default_level();
    let mut chunks = Vec::new();
    for c in 0..plan.num_chunks() {
        let fetched = engine.get_kv(doc_id, c, level).expect("stored chunk");
        let FetchedChunk::Encoded(bytes) = fetched else {
            unreachable!("get_kv returns encoded bitstreams")
        };
        let enc = EncodedKv::from_bytes(&bytes).expect("well-formed bitstream");
        chunks.push(engine.decode_at_level(&enc, level));
    }
    let cache = cachegen_llm::KvCache::concat_tokens(&chunks);
    println!(
        "fetched + decoded KV: {} tokens ready, prefill skipped",
        cache.tokens()
    );

    for (qi, q) in [[3usize, 17], [41, 9], [77, 5]].iter().enumerate() {
        let answer = engine.generate_with_kv(&cache, q, 6);
        println!("  query {qi}: prompt {q:?} -> answer tokens {answer:?}");
    }

    // Analytic TTFT at real-model scale for this deployment (Figure 8e
    // shape: Mistral-7B-class QA at 3 Gbps).
    let ttft = TtftModel::new(ModelSpec::mistral_7b(), GpuSpec::default());
    let tokens = doc.paper_tokens;
    println!("\npaper-scale TTFT for a {tokens}-token document at 3 Gbps:");
    for (name, method) in [
        ("text context", LoadMethod::TextContext),
        ("8-bit quantization", LoadMethod::Quantized { bits: 8.0 }),
        (
            "CacheGen",
            LoadMethod::CacheGen {
                bits_per_element: 3.6, // level-1 operating point, measured (fig9)
            },
        ),
    ] {
        let b = ttft.ttft(method, tokens, 3.0 * GBPS);
        println!(
            "  {:<20} transfer {:>6.2}s  decode {:>5.2}s  compute {:>5.2}s  total {:>6.2}s",
            name,
            b.transfer,
            b.decode,
            b.compute,
            b.total()
        );
    }
}
