//! Quickstart: compress a KV cache, ship it, generate from it.
//!
//! Walks the whole CacheGen data path on a small simulated model:
//! 1. prefill a long context (`calculate_kv`),
//! 2. encode the KV cache into bitstreams at several quality levels,
//! 3. compare wire sizes against the uniform-quantization baseline,
//! 4. decode and generate, checking quality against the full-precision
//!    reference.
//!
//! Run with: `cargo run --release --example quickstart`

use cachegen::{CacheGenEngine, EngineConfig};
use cachegen_baselines::quantization_baseline;
use cachegen_llm::{eval, SimModelConfig};
use cachegen_workloads::{workload_rng, Dataset};

fn main() {
    // An engine needs offline profiling contexts from the same model
    // (§5.2: one profile per LLM, reused for every context).
    let mut rng = workload_rng(7);
    let vocab = 512;
    let profile: Vec<Vec<usize>> = (0..2)
        .map(|_| Dataset::LongChat.generate(&mut rng, vocab, 240).tokens)
        .collect();
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &profile,
    );

    // A fresh context to serve.
    let sample = Dataset::LongChat.generate(&mut rng, vocab, 240);
    println!(
        "context: {} sim tokens (paper-scale {} tokens)",
        sample.tokens.len(),
        sample.paper_tokens
    );

    // 1. calculate_kv
    let cache = engine.calculate_kv(&sample.tokens);
    let fp16 = cache.size_bytes(16.0);
    println!(
        "KV cache: {} layers × {} tokens × {} channels = {:.1} KB at fp16",
        cache.layers(),
        cache.tokens(),
        cache.channels(),
        fp16 as f64 / 1e3
    );

    // 2–3. encode at each level; compare against quantization baselines.
    println!("\n{:<22} {:>12} {:>12}", "method", "wire bytes", "vs fp16");
    for bits in [8u8, 4, 3] {
        let q = quantization_baseline(&cache, bits);
        println!(
            "{:<22} {:>12} {:>11.1}x",
            format!("uniform {bits}-bit"),
            q.wire_bytes,
            fp16 as f64 / q.wire_bytes as f64
        );
    }
    for level in 0..engine.num_levels() {
        let enc = engine.encode_at_level(&cache, level);
        println!(
            "{:<22} {:>12} {:>11.1}x",
            format!("CacheGen level {level}"),
            enc.total_bytes(),
            fp16 as f64 / enc.total_bytes() as f64
        );
    }

    // 4. decode and generate; score against the lossless reference.
    let prompts: Vec<Vec<usize>> = (0..16).map(|p| sample_prompt(p, vocab)).collect();
    println!("\n{:<22} {:>18}", "method", "first-token acc");
    for level in [0, engine.default_level(), engine.num_levels() - 1] {
        let enc = engine.encode_at_level(&cache, level);
        let dec = engine.decode_at_level(&enc, level);
        let acc = eval::first_token_accuracy(engine.model(), &cache, &dec, &prompts);
        println!(
            "{:<22} {:>17.0}%",
            format!("CacheGen level {level}"),
            acc * 100.0
        );
    }

    let out = engine.generate_with_kv(&cache, &sample.prompt, 8);
    println!("\nreference generation from exact KV: {out:?}");
}

fn sample_prompt(i: usize, vocab: usize) -> Vec<usize> {
    vec![(i * 13) % vocab, (i * 29 + 3) % vocab]
}
