//! Bandwidth-adaptive streaming on the paper's Figure 7 scenario.
//!
//! A KV stream starts on a 2 Gbps link; at t = 2 s the bandwidth collapses
//! to 0.2 Gbps, recovering to 1 Gbps at t = 4 s. A fixed encoding level
//! blows through the SLO; CacheGen's adapter (Algorithm 1) watches the
//! measured per-chunk throughput and downshifts (or falls back to text +
//! recompute), meeting the deadline. This example prints the chunk-by-chunk
//! timeline for both policies.
//!
//! Run with: `cargo run --release --example adaptive_streaming`

use cachegen_net::trace::{BandwidthTrace, GBPS};
use cachegen_net::Link;
use cachegen_streamer::{
    simulate_stream, AdaptPolicy, ChunkPlan, ChunkSizes, LevelLadder, StreamConfig, StreamParams,
};

fn main() {
    // Paper-scale plan: a ~1 GB KV stream in 6 chunks, encoded at four
    // levels (sizes from the measured CacheGen ratios), 6 KB of text each.
    let chunk = || {
        ChunkSizes::new(
            1_500,
            vec![170_000_000, 110_000_000, 70_000_000, 40_000_000],
            6_000,
        )
    };
    let plan = ChunkPlan::new((0..6).map(|_| chunk()).collect());
    let ladder = LevelLadder::new(vec![0.5, 1.0, 1.5, 2.5]);
    let slo = 4.0;

    let decode = |bytes: u64| bytes as f64 / 2.0e9; // GPU AC decoder
    let recompute = |tokens: usize| tokens as f64 * 4.0e-4; // prefill/token

    println!("Figure 7 trace: 2 Gbps -> 0.2 Gbps @2s -> 1 Gbps @4s; SLO {slo} s\n");
    for (name, policy) in [
        ("fixed level 0 (no adaptation)", AdaptPolicy::FixedLevel(0)),
        ("CacheGen adaptive", AdaptPolicy::Adaptive),
    ] {
        let mut link = Link::new(BandwidthTrace::figure7(), 0.0);
        let params = StreamParams {
            slo: Some(slo),
            policy,
            prior_throughput_bps: Some(2.0 * GBPS),
            concurrent_requests: 1,
            ladder: &ladder,
            decode_seconds: &decode,
            recompute_seconds: &recompute,
        };
        let out = simulate_stream(&plan, &mut link, &params);
        println!("{name}:");
        println!(
            "  {:>5} {:>14} {:>12} {:>10} {:>10}",
            "chunk", "config", "bytes", "sent at", "ready at"
        );
        for c in &out.chunks {
            let cfg = match c.config {
                StreamConfig::Level(l) => format!("level {l}"),
                StreamConfig::Text => "text+recompute".to_string(),
            };
            println!(
                "  {:>5} {:>14} {:>12} {:>9.2}s {:>9.2}s",
                c.index, cfg, c.bytes, c.transfer_start, c.ready
            );
        }
        println!(
            "  finish {:.2} s — SLO {}\n",
            out.finish,
            if out.slo_met { "MET" } else { "VIOLATED" }
        );
    }
}
