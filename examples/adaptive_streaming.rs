//! Bandwidth-adaptive streaming on the paper's Figure 7 scenario, plus
//! loss-resilient packetized delivery.
//!
//! Part 1 — a KV stream starts on a 2 Gbps link; at t = 2 s the bandwidth
//! collapses to 0.2 Gbps, recovering to 1 Gbps at t = 4 s. A fixed
//! encoding level blows through the SLO; CacheGen's adapter (Algorithm 1)
//! watches the measured per-chunk throughput and downshifts (or falls
//! back to text + recompute), meeting the deadline.
//!
//! Part 2 — the same engine-backed stream is fetched over a seeded lossy
//! and reordering link: every per-(layer, group) entropy chunk travels
//! as its own packet, holes left after the retransmit budget are
//! repaired by neighbor-anchor interpolation (provenance printed per
//! chunk), and the stream finishes on time instead of stalling.
//!
//! Run with: `cargo run --release --example adaptive_streaming`
//! Override the fault injection: `-- --loss 0.05 --reorder 0.1`

use cachegen::{load_context, CacheGenEngine, EngineConfig, LoadParams, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::trace::{BandwidthTrace, GBPS};
use cachegen_net::{Link, PacketFaults};
use cachegen_streamer::{
    simulate_stream, AdaptPolicy, ChunkPlan, ChunkSizes, FecOverhead, LevelLadder, StreamConfig,
    StreamParams,
};

fn figure7_adaptation() {
    // Paper-scale plan: a ~1 GB KV stream in 6 chunks, encoded at four
    // levels (sizes from the measured CacheGen ratios), 6 KB of text each.
    let chunk = || {
        ChunkSizes::new(
            1_500,
            vec![170_000_000, 110_000_000, 70_000_000, 40_000_000],
            6_000,
        )
    };
    let plan = ChunkPlan::new((0..6).map(|_| chunk()).collect());
    let ladder = LevelLadder::new(vec![0.5, 1.0, 1.5, 2.5]);
    let slo = 4.0;

    let decode = |bytes: u64| bytes as f64 / 2.0e9; // GPU AC decoder
    let recompute = |tokens: usize| tokens as f64 * 4.0e-4; // prefill/token

    println!("Figure 7 trace: 2 Gbps -> 0.2 Gbps @2s -> 1 Gbps @4s; SLO {slo} s\n");
    for (name, policy) in [
        ("fixed level 0 (no adaptation)", AdaptPolicy::FixedLevel(0)),
        ("CacheGen adaptive", AdaptPolicy::Adaptive),
    ] {
        let mut link = Link::new(BandwidthTrace::figure7(), 0.0);
        let params = StreamParams {
            slo: Some(slo),
            policy,
            prior_throughput_bps: Some(2.0 * GBPS),
            concurrent_requests: 1,
            retransmit_budget: 0,
            fec_overhead: FecOverhead::Off,
            ladder: &ladder,
            decode_seconds: &decode,
            recompute_seconds: &recompute,
            recorder: None,
        };
        let out = simulate_stream(&plan, &mut link, &params);
        println!("{name}:");
        println!(
            "  {:>5} {:>14} {:>12} {:>10} {:>10}",
            "chunk", "config", "bytes", "sent at", "ready at"
        );
        for c in &out.chunks {
            let cfg = match c.config {
                StreamConfig::Level(l) => format!("level {l}"),
                StreamConfig::Text => "text+recompute".to_string(),
            };
            println!(
                "  {:>5} {:>14} {:>12} {:>9.2}s {:>9.2}s",
                c.index, cfg, c.bytes, c.transfer_start, c.ready
            );
        }
        println!(
            "  finish {:.2} s — SLO {}\n",
            out.finish,
            if out.slo_met { "MET" } else { "VIOLATED" }
        );
    }
}

fn loss_resilient_streaming(loss: f64, reorder: f64) {
    println!(
        "Loss resilience: packetized fetch at {loss:.0$}% loss + {reorder:.0$}% reorder (seeded)\n",
        0
    );
    let profile: Vec<usize> = (0..120).map(|i| (i * 7) % 512).collect();
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &[profile],
    );
    let ctx: Vec<usize> = (0..150).map(|i| (i * 13) % 512).collect();
    let reference = engine.calculate_kv(&ctx);

    let faults = PacketFaults {
        loss: loss / 100.0,
        reorder: reorder / 100.0,
        ..PacketFaults::none()
    };
    let run = |repair: RepairPolicy, budget: usize| {
        let mut link = Link::new(BandwidthTrace::constant(2e6), 0.02).with_packet_faults(faults, 7);
        let params = LoadParams {
            prior_throughput_bps: Some(2e6),
            repair,
            retransmit_budget: budget,
            ..LoadParams::default()
        };
        load_context(&engine, &reference, &mut link, &params)
    };

    let stall = run(RepairPolicy::AnchorInterpolate, usize::MAX);
    let repairing = run(RepairPolicy::AnchorInterpolate, 1);
    println!(
        "  stall-and-retry baseline: finish {:.3} s ({} retransmits, 0 holes)",
        stall.stream.finish,
        stall.stream.retransmits()
    );
    println!(
        "  anchor-interpolate:       finish {:.3} s ({} retransmits, {} repaired chunks = {:.1}%)",
        repairing.stream.finish,
        repairing.stream.retransmits(),
        repairing.repairs.len(),
        100.0 * repairing.repaired_fraction
    );
    for (chunk, r) in repairing.repairs.iter().take(6) {
        println!(
            "    chunk {chunk}: {}[layer {}, group {}] {:?} <- {:?}",
            if r.is_k { "K" } else { "V" },
            r.layer,
            r.group,
            r.kind,
            r.cause
        );
    }
    if repairing.repairs.len() > 6 {
        println!("    … and {} more", repairing.repairs.len() - 6);
    }
    let mse = reference.mse(&repairing.cache);
    println!(
        "  repaired cache mse vs reference: {mse:.4} (finite, bounded — no stall, no noise)\n"
    );
    assert!(
        repairing.cache.k().data().iter().all(|x| x.is_finite()),
        "repaired cache must be finite"
    );
    assert!(
        repairing.stream.finish <= stall.stream.finish,
        "repairing must never finish after the stall baseline"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let loss = flag("--loss", 0.05) * 100.0;
    let reorder = flag("--reorder", 0.10) * 100.0;

    figure7_adaptation();
    loss_resilient_streaming(loss, reorder);
}
