//! Sharded multi-tenant serving under shared-prefix (RAG fan-out) load.
//!
//! Four tenants fire Zipf-skewed queries against a corpus of shared
//! documents served by a two-shard cluster. Each shard owns an engine, a
//! local KV-bitstream cache, and a store link; per-tenant bounded queues
//! apply backpressure and same-context fetches coalesce into one transfer.
//! The demo replays the identical trace twice — once with CacheGen's KV
//! streaming (+ caching + batching), once with the text-fallback baseline
//! that re-prefills every context — and compares per-tenant TTFT
//! percentiles. It also replays the CacheGen run a second time to show
//! the virtual-clock simulation is deterministic.
//!
//! A final traced replay exports the full request-lifecycle telemetry:
//! `serving_trace.json` (Chrome trace-event format — load it in Perfetto
//! or `chrome://tracing`; shards appear as processes, tenants as
//! threads) and `BENCH_serving.json` (the metrics-registry snapshot with
//! TTFT percentiles and shed rates), both at the workspace root and both
//! byte-identical across same-seed runs.
//!
//! Run with: `cargo run --release --example serving`
//!
//! With `--backend threads [--cores N]` the identical workload instead
//! runs on the real OS-thread execution backend: the virtual-clock
//! oracle plans the run, then real per-shard workers replay it (chunk
//! decodes on the shared codec pool), sweeping 1→N workers per shard.
//! Outcomes are asserted identical to the oracle's; the sweep's
//! wall-clock throughput lands in `BENCH_serving_threads.json` and the
//! final run's trace in `serving_trace_threads.json`.

use cachegen::qoe::QoeModel;
use cachegen::EngineConfig;
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link};
use cachegen_serving::{ServingCluster, ServingConfig, ServingReport, ThreadBackend};
use cachegen_streamer::AdaptPolicy;
use cachegen_telemetry::{
    chrome_trace_json, metrics_snapshot_json, validate_chrome_trace, workspace_root, JsonValue,
    Recorder, Stage, NOOP,
};
use cachegen_workloads::{workload_rng, MultiTenantWorkload, SharedPrefixGen};

const SEED: u64 = 24;
const TENANTS: usize = 4;
const SHARDS: usize = 2;
const REQUESTS: usize = 160;
const RATE_HZ: f64 = 15.0;

fn config(policy: AdaptPolicy) -> ServingConfig {
    ServingConfig {
        num_shards: SHARDS,
        num_tenants: TENANTS,
        slo: Some(0.15),
        policy,
        prior_throughput_bps: Some(5e6),
        recompute_sec_per_token: 2e-3,
        ..ServingConfig::default()
    }
}

fn run(policy: AdaptPolicy, workload: &MultiTenantWorkload) -> ServingReport {
    run_traced(policy, workload, &NOOP)
}

fn build_cluster(policy: AdaptPolicy, workload: &MultiTenantWorkload) -> ServingCluster {
    let cfg = config(policy);
    let links = (0..SHARDS)
        .map(|_| Link::new(BandwidthTrace::constant(5e6), 0.0))
        .collect();
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    let mut cluster = ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        cfg,
        &profile,
        links,
    );
    for (id, tokens) in &workload.documents {
        cluster.store_context(*id, tokens);
    }
    cluster
}

fn run_traced(
    policy: AdaptPolicy,
    workload: &MultiTenantWorkload,
    recorder: &Recorder,
) -> ServingReport {
    build_cluster(policy, workload).run_traced(&workload.requests, recorder)
}

fn summarize(name: &str, report: &ServingReport) {
    let qoe = QoeModel::default();
    println!("{name}:");
    println!(
        "  {:>7} {:>10} {:>10} {:>10}",
        "tenant", "requests", "p50 TTFT", "p95 TTFT"
    );
    for t in 0..TENANTS {
        let n = report.ttfts(Some(t)).len();
        println!(
            "  {:>7} {:>10} {:>9.0}ms {:>9.0}ms",
            t,
            n,
            report.ttft_percentile(Some(t), 50.0).unwrap_or(f64::NAN) * 1e3,
            report.ttft_percentile(Some(t), 95.0).unwrap_or(f64::NAN) * 1e3,
        );
    }
    for (i, s) in report.shards.iter().enumerate() {
        println!(
            "  shard {i}: util {:>3.0}%  batches {:>3}  coalesced {:>3}  \
             cache hit {:>3.0}%  fetched {} KB  peak queue {}",
            100.0 * s.utilization(report.makespan),
            s.batches,
            s.coalesced_requests,
            100.0 * s.cache.hit_ratio(),
            s.bytes_fetched / 1024,
            s.peak_queue_depth,
        );
    }
    println!(
        "  fleet: p50 {:.0} ms  p95 {:.0} ms  quality {:.3}  MOS {:.2}  \
         shed {}  degraded {}\n",
        report.ttft_percentile(None, 50.0).unwrap_or(f64::NAN) * 1e3,
        report.ttft_percentile(None, 95.0).unwrap_or(f64::NAN) * 1e3,
        report.mean_quality(),
        report.mean_mos(&qoe),
        report.shed_count(),
        report.degraded_count(),
    );
}

fn main() {
    let (backend, cores) = parse_args();
    let gen = SharedPrefixGen::new(64, 8, 120);
    let workload = gen.generate(&mut workload_rng(SEED), TENANTS, REQUESTS, RATE_HZ);
    println!(
        "{} requests, {} tenants, {} shared documents, {} shards, ~{:.0} req/s, backend {}\n",
        REQUESTS,
        TENANTS,
        workload.documents.len(),
        SHARDS,
        RATE_HZ,
        backend,
    );
    if backend == "threads" {
        run_threads_demo(&workload, cores);
        return;
    }

    let cachegen = run(AdaptPolicy::Adaptive, &workload);
    summarize("CacheGen (KV streaming + cache + batching)", &cachegen);

    let text = run(AdaptPolicy::AlwaysText, &workload);
    summarize("Text fallback baseline (re-prefill every context)", &text);

    let replay = run(AdaptPolicy::Adaptive, &workload);
    let deterministic = replay.outcomes == cachegen.outcomes;
    println!(
        "deterministic replay (same seed, same percentiles): {}",
        if deterministic { "yes" } else { "NO" }
    );
    assert!(deterministic, "virtual-clock replay diverged");

    let p50_kv = cachegen.ttft_percentile(None, 50.0).expect("completions");
    let p50_text = text.ttft_percentile(None, 50.0).expect("completions");
    println!(
        "p50 TTFT: CacheGen {:.0} ms vs text baseline {:.0} ms ({:.1}x)",
        p50_kv * 1e3,
        p50_text * 1e3,
        p50_text / p50_kv
    );
    assert!(
        p50_kv < p50_text,
        "cached multi-tenant load must beat the text baseline"
    );

    // Traced replay: the recorder observes, never perturbs — the traced
    // run must resolve every request exactly like the untraced ones.
    let export = || {
        let recorder = Recorder::new();
        let report = run_traced(AdaptPolicy::Adaptive, &workload, &recorder);
        let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
        let metrics = metrics_snapshot_json(&recorder.registry_snapshot());
        (recorder, report, trace, metrics)
    };
    let (recorder, traced, trace, metrics) = export();
    assert_eq!(
        traced.outcomes, cachegen.outcomes,
        "recording must be observation-only"
    );
    let (_, _, trace_again, metrics_again) = export();
    assert_eq!(trace, trace_again, "trace export must be byte-identical");
    assert_eq!(
        metrics, metrics_again,
        "metrics export must be byte-identical"
    );

    // The exported trace must validate (one root per request, children
    // contained) and each request's child spans must tile >= 99% of its
    // TTFT — the span tree accounts for where every millisecond went.
    let summary = validate_chrome_trace(&trace).expect("exported trace must validate");
    let spans = recorder.spans();
    for (i, outcome) in traced.outcomes.iter().enumerate() {
        let Some(ttft) = outcome.ttft() else { continue };
        let covered: f64 = spans
            .iter()
            .filter(|s| s.ctx.request == i as u64)
            .filter(|s| {
                matches!(
                    s.stage,
                    Stage::QueueWait | Stage::StoreFetch | Stage::CacheDecode | Stage::Prefill
                )
            })
            .map(|s| s.duration())
            .sum();
        assert!(
            covered >= 0.99 * ttft,
            "request {i}: span tree covers {covered:.6}s of {ttft:.6}s TTFT"
        );
    }

    let root = workspace_root();
    let trace_path = root.join("serving_trace.json");
    std::fs::write(&trace_path, &trace).expect("write serving_trace.json");
    let bench_path = root.join("BENCH_serving.json");
    std::fs::write(&bench_path, &metrics).expect("write BENCH_serving.json");
    println!(
        "\ntelemetry: {} spans, {} instants, {} request roots — \
         wrote {} (load it in Perfetto) and {}",
        summary.spans,
        summary.instants,
        summary.requests,
        trace_path.display(),
        bench_path.display(),
    );
}

/// `--backend virtual|threads` and `--cores N` (threads only; defaults
/// to this host's available parallelism).
fn parse_args() -> (String, usize) {
    let mut backend = "virtual".to_string();
    let mut cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--backend" => {
                backend = value(i).clone();
                assert!(
                    backend == "virtual" || backend == "threads",
                    "unknown backend `{backend}` (virtual|threads)"
                );
                i += 2;
            }
            "--cores" => {
                cores = value(i).parse().unwrap_or_else(|e| panic!("--cores: {e}"));
                assert!(cores >= 1, "--cores must be >= 1");
                i += 2;
            }
            other => panic!("unknown argument `{other}` (--backend, --cores)"),
        }
    }
    (backend, cores)
}

/// The thread-backend path: oracle reference first, then a 1→`cores`
/// workers-per-shard wall-clock sweep over the identical workload, with
/// outcome equality asserted at every point. Artifacts:
/// `BENCH_serving_threads.json` (the sweep) and
/// `serving_trace_threads.json` (the final run's wall-clock trace).
fn run_threads_demo(workload: &MultiTenantWorkload, cores: usize) {
    let oracle = run(AdaptPolicy::Adaptive, workload);
    println!(
        "virtual oracle: {} completed, makespan {:.2}s (virtual), p50 {:.0} ms",
        oracle.completed().count(),
        oracle.makespan,
        oracle.ttft_percentile(None, 50.0).unwrap_or(f64::NAN) * 1e3,
    );

    let mut sweep = Vec::new();
    let mut final_artifacts = None;
    println!(
        "\n  {:>7} {:>10} {:>12} {:>14}",
        "workers", "wall", "req/s", "chunks decoded"
    );
    for workers in 1..=cores {
        // A fresh cluster per point: every sweep entry replays the same
        // cold-start plan, so wall clocks are comparable.
        let mut cluster = build_cluster(AdaptPolicy::Adaptive, workload);
        let recorder = Recorder::new_wall();
        let (report, stats) =
            ThreadBackend::new(workers).run_detailed(&mut cluster, &workload.requests, &recorder);
        assert_eq!(
            report.outcomes, oracle.outcomes,
            "thread backend ({workers} workers) diverged from the oracle"
        );
        assert!(
            stats.decode_errors.is_empty(),
            "decode errors: {:?}",
            stats.decode_errors
        );
        let completed = report.completed().count();
        let rps = completed as f64 / stats.wall_secs.max(1e-9);
        println!(
            "  {:>7} {:>9.3}s {:>12.0} {:>14}",
            workers, stats.wall_secs, rps, stats.decoded_chunks
        );
        sweep.push(JsonValue::Object(vec![
            ("workers".to_string(), JsonValue::Number(workers as f64)),
            ("wall_secs".to_string(), JsonValue::Number(stats.wall_secs)),
            ("requests_per_sec".to_string(), JsonValue::Number(rps)),
            (
                "decoded_chunks".to_string(),
                JsonValue::Number(stats.decoded_chunks as f64),
            ),
            (
                "pool_workers".to_string(),
                JsonValue::Number(stats.pool_workers as f64),
            ),
        ]));
        final_artifacts = Some((recorder, report));
    }
    let (recorder, report) = final_artifacts.expect("cores >= 1, so the sweep ran at least once");

    // The wall-clock trace carries the same taxonomy as the oracle's and
    // must satisfy the same structural contract.
    let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
    let summary = validate_chrome_trace(&trace).expect("thread-backend trace must validate");
    let metrics = metrics_snapshot_json(&recorder.registry_snapshot());

    let root = workspace_root();
    let trace_path = root.join("serving_trace_threads.json");
    std::fs::write(&trace_path, &trace).expect("write serving_trace_threads.json");
    let doc = JsonValue::Object(vec![
        (
            "bench".to_string(),
            JsonValue::String("serving_threads".to_string()),
        ),
        ("cores".to_string(), JsonValue::Number(cores as f64)),
        ("requests".to_string(), JsonValue::Number(REQUESTS as f64)),
        (
            "completed".to_string(),
            JsonValue::Number(report.completed().count() as f64),
        ),
        (
            "virtual_makespan_s".to_string(),
            JsonValue::Number(oracle.makespan),
        ),
        ("sweep".to_string(), JsonValue::Array(sweep)),
    ]);
    let bench_path = root.join("BENCH_serving_threads.json");
    let mut text = doc.to_compact();
    text.push('\n');
    std::fs::write(&bench_path, text).expect("write BENCH_serving_threads.json");
    println!(
        "\noutcomes identical to the oracle at every sweep point; \
         {} spans, {} request roots — wrote {} and {}",
        summary.spans,
        summary.requests,
        trace_path.display(),
        bench_path.display(),
    );
    println!("{}", metrics);
}
