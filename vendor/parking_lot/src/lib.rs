//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. Poisoned locks are recovered transparently (consistent with
//! parking_lot, which has no poisoning).

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose accessors never return `Result`s.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_value() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
