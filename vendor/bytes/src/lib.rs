//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply-clonable (`Arc`-backed)
//! contiguous byte buffer with the constructor and accessor surface this
//! workspace uses. Zero-copy slicing is supported via offset/length views
//! into the shared allocation.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates a buffer from a static byte slice (copies; the upstream
    /// crate is zero-copy here, which no caller in this workspace relies
    /// on).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a zero-copy view of `range` within this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds of {}",
            range.start,
            range.end,
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn clone_is_shallow_equal() {
        let b = Bytes::from("hello".to_string());
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], b"hello");
    }
}
