//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range strategies over integers and floats,
//! [`collection::vec`], and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! cases are generated from a fixed deterministic seed (persisting failing
//! seeds is unnecessary when every run is identical), and there is no
//! shrinking — a failing case reports its inputs via the panic message
//! because every strategy value is `Debug`-printed on failure.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! Strategy trait and primitive strategy implementations.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for vectors of `element` values with a length
    /// in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration.

    /// How many random cases each property test runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Creates the deterministic per-test RNG. Mixing the test name in means
/// each property test sees a different stream while staying reproducible.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (((case as u64) << 32) | 0x5bd1_e995))
}

/// Prints its message if dropped during a panic: reports the inputs of
/// the failing case without imposing `UnwindSafe`/`Clone` on them.
#[doc(hidden)]
pub struct CaseReporter(pub Option<String>);

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(msg) = self.0.take() {
                eprintln!("{msg}");
            }
        }
    }
}

/// Commonly-used re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests. Each body runs `config.cases` times with
/// fresh strategy samples; inputs are echoed on panic for diagnosis.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)*
                let mut report = format!(
                    "proptest case {case} of {} failed with inputs:",
                    stringify!($name),
                );
                $(report.push_str(&format!(
                    "\n  {} = {:?}", stringify!($arg), $arg));)*
                let _reporter = $crate::CaseReporter(Some(report));
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
