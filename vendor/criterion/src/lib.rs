//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, throughput
//! annotations, parameterized IDs) with a simple calibrated wall-clock
//! timer instead of criterion's statistical machinery. Good enough to
//! compile under `cargo bench --no-run` and to print indicative
//! nanosecond-per-iteration numbers when actually run.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Work-per-iteration annotation used to report rates alongside times.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures and measures their wall-clock time.
pub struct Bencher {
    iters_done: u64,
    nanos: f64,
}

impl Bencher {
    /// Times `routine`, first warming up, then running enough iterations
    /// to get a stable per-iteration estimate.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs for
        // at least ~50ms, capped to keep `cargo bench` fast.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= 0.05 || n >= 1 << 20 {
                self.iters_done = n;
                self.nanos = elapsed * 1e9 / n as f64;
                return;
            }
            n *= 4;
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work-per-iteration figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub ignores sampling config.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.throughput, |b| routine(b));
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.throughput, |b| routine(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// One completed benchmark measurement, kept so a custom bench `main`
/// can export machine-readable numbers after the human-readable print.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Full label (`group/function` or `group/function/param`).
    pub label: String,
    /// Wall-clock nanoseconds per iteration.
    pub nanos_per_iter: f64,
    /// Iterations the estimate was averaged over.
    pub iters: u64,
    /// The group's work-per-iteration annotation, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Milliseconds per iteration.
    pub fn ms_per_iter(&self) -> f64 {
        self.nanos_per_iter / 1e6
    }

    /// Elements processed per second (`None` without an
    /// [`Throughput::Elements`] annotation).
    pub fn elements_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) => Some(n as f64 * 1e9 / self.nanos_per_iter),
            _ => None,
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// All measurements recorded so far, in run order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The measurement whose label matches `label` exactly.
    pub fn measurement(&self, label: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.label == label)
    }
    /// Accepted for API compatibility with criterion's generated mains.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        self.run_one(&label, None, |b| routine(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        label: &str,
        throughput: Option<Throughput>,
        mut routine: F,
    ) {
        let mut bencher = Bencher {
            iters_done: 0,
            nanos: 0.0,
        };
        routine(&mut bencher);
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / bencher.nanos)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 * 1e3 / bencher.nanos)
            }
            None => String::new(),
        };
        println!(
            "bench {label:<50} {:>12.1} ns/iter  [{} iters]{rate}",
            bencher.nanos, bencher.iters_done
        );
        self.measurements.push(Measurement {
            label: label.to_string(),
            nanos_per_iter: bencher.nanos,
            iters: bencher.iters_done,
            throughput,
        });
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench harness `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
