//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so this vendored crate
//! provides the subset of the `rand 0.8` API the codebase uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`] built on xoshiro256++ (seeded through splitmix64).
//! It is API-compatible for the calls made here, not a drop-in clone.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an RNG (the subset of the
/// `Standard` distribution the workspace relies on).
pub trait StandardSample: Sized {
    /// Draws one uniform sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision, as in upstream rand.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, as in upstream rand.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Bounds that `Rng::gen_range` accepts (`start..end` ranges only).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the span sizes used here
                // (span << 2^64) and acceptable for a simulation workspace.
                let off = (u128::sample_standard(rng) % span) as $t;
                self.start.wrapping_add(off)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let off = (u128::sample_standard(rng) % span) as $t;
                start.wrapping_add(off)
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + <$t>::sample_standard(rng) * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// The user-facing sampling trait (auto-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`start..end` or `start..=end`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-width seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG by expanding a 64-bit seed (splitmix64, like
    /// upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++.
    ///
    /// Not the ChaCha12 generator upstream `StdRng` uses, but fast,
    /// well-distributed, and fully deterministic per seed — which is what
    /// the workspace's reproducible experiments need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_per_seed() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn seeds_decorrelate() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert_eq!(same, 0);
        }

        #[test]
        fn unit_floats_in_range() {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                let x: f64 = rng.gen();
                assert!((0.0..1.0).contains(&x));
                let y: f32 = rng.gen();
                assert!((0.0..1.0).contains(&y));
            }
        }

        #[test]
        fn uniform_mean_is_half() {
            let mut rng = StdRng::seed_from_u64(4);
            let n = 100_000;
            let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
            assert!((sum / n as f64 - 0.5).abs() < 0.01);
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..10_000 {
                let v = rng.gen_range(10usize..20);
                assert!((10..20).contains(&v));
                let f = rng.gen_range(-2.0f32..3.0);
                assert!((-2.0..3.0).contains(&f));
            }
        }
    }
}
