//! Backend-equivalence suite: the virtual-clock discrete-event loop is
//! the oracle, and every other execution backend must agree with it on
//! everything except wall-clock durations.
//!
//! Three layers of pinning:
//!
//! 1. **Golden digests** — FNV-1a hashes of the traced virtual run's
//!    Chrome-trace and metrics exports, captured on the pre-refactor
//!    tree. The `ExecutionBackend` split must keep the oracle
//!    byte-identical; if a digest moves, the refactor changed observable
//!    behavior and the constant must only be re-baselined with a written
//!    reason.
//! 2. **Proptest over seeds** — `VirtualClockBackend` (the trait route)
//!    and `ServingCluster::run_traced` (the direct route) must produce
//!    byte-identical exports for arbitrary seeds, and replays of either
//!    must be byte-identical to themselves.
//! 3. **Cross-backend invariants** — the thread backend must reproduce
//!    the oracle's request outcomes, shed/degrade decisions, final cache
//!    state, and per-request span-tree shapes; only durations differ.

use std::collections::BTreeMap;

use cachegen::{EngineConfig, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link, PacketFaults};
use cachegen_serving::{
    ServingCluster, ServingConfig, ServingReport, ThreadBackend, VirtualClockBackend,
};
use cachegen_telemetry::{
    chrome_trace_json, metrics_snapshot_json, validate_chrome_trace, Recorder, Stage,
};
use cachegen_workloads::{workload_rng, MultiTenantWorkload, SharedPrefixGen};
use proptest::prelude::*;

/// FNV-1a, the digest the telemetry goldens are pinned with (no deps,
/// stable across platforms for identical bytes).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn clean_config() -> ServingConfig {
    ServingConfig::default()
}

fn lossy_config() -> ServingConfig {
    ServingConfig {
        repair: RepairPolicy::Refetch,
        retransmit_budget: 0,
        ..ServingConfig::default()
    }
}

/// A cluster with one constant-bandwidth link per shard; `loss` adds the
/// seeded per-shard packet faults the lossy scenarios use.
fn build_cluster(config: &ServingConfig, bandwidth_bps: f64, loss: Option<f64>) -> ServingCluster {
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    let links = (0..config.num_shards)
        .map(|s| {
            let link = Link::new(BandwidthTrace::constant(bandwidth_bps), 0.0);
            match loss {
                Some(p) => link.with_packet_faults(PacketFaults::loss(p), 100 + s as u64),
                None => link,
            }
        })
        .collect();
    ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        config.clone(),
        &profile,
        links,
    )
}

fn workload(seed: u64, tenants: usize, n: usize, rate_hz: f64) -> MultiTenantWorkload {
    SharedPrefixGen::new(64, 6, 90).generate(&mut workload_rng(seed), tenants, n, rate_hz)
}

/// One traced virtual run from a cold cluster: returns the report plus
/// the two byte-deterministic exports.
fn traced_virtual_run(
    config: &ServingConfig,
    bandwidth_bps: f64,
    loss: Option<f64>,
    seed: u64,
    n: usize,
    rate_hz: f64,
) -> (ServingReport, String, String) {
    let mut cluster = build_cluster(config, bandwidth_bps, loss);
    let wl = workload(seed, config.num_tenants, n, rate_hz);
    for (id, tokens) in &wl.documents {
        cluster.store_context(*id, tokens);
    }
    let recorder = Recorder::new();
    let report = cluster.run_traced(&wl.requests, &recorder);
    let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
    let metrics = metrics_snapshot_json(&recorder.registry_snapshot());
    (report, trace, metrics)
}

/// (label, seed, trace digest, metrics digest). Originally captured from
/// the pre-`ExecutionBackend` tree (commit b287965's behavior);
/// re-baselined when wire v3 (interleaved rANS) replaced the serial range
/// coder — chunk payloads carry a 32-byte state flush, so every encoded
/// size and therefore every virtual transfer timing legitimately moved.
/// The backend-equivalence property itself (virtual vs thread backend)
/// is unchanged and still asserted by the other tests in this file.
const GOLDEN: &[(&str, u64, u64, u64)] = &[
    ("clean", 1, 0x865a9fd00f2854b6, 0xa6cd4200a8320858),
    ("clean", 7, 0x8df24fb482b779f6, 0x4850e6b58cf47cab),
    ("clean", 11, 0x34f48f67a36cbb5c, 0x5f8c577426515503),
    ("lossy", 11, 0x66f747a9d044c614, 0xd8bf4ae8ed78a53f),
];

fn scenario(label: &str, seed: u64) -> (ServingReport, String, String) {
    match label {
        "clean" => traced_virtual_run(&clean_config(), 5e6, None, seed, 80, 30.0),
        "lossy" => traced_virtual_run(&lossy_config(), 5e6, Some(0.25), seed, 80, 10.0),
        other => panic!("unknown golden scenario {other}"),
    }
}

#[test]
fn virtual_backend_matches_pre_refactor_goldens() {
    let mut actual = Vec::new();
    let mut ok = true;
    for &(label, seed, want_trace, want_metrics) in GOLDEN {
        let (_, trace, metrics) = scenario(label, seed);
        let (got_trace, got_metrics) = (fnv1a(trace.as_bytes()), fnv1a(metrics.as_bytes()));
        actual.push(format!(
            "    (\"{label}\", {seed}, 0x{got_trace:016x}, 0x{got_metrics:016x}),"
        ));
        ok &= got_trace == want_trace && got_metrics == want_metrics;
    }
    assert!(
        ok,
        "virtual-clock exports diverged from the pre-refactor goldens; \
         actual digests:\n{}",
        actual.join("\n")
    );
}

/// The same traced run through the `ExecutionBackend` trait object
/// instead of `run_traced` directly — both routes must be one code path.
fn traced_via_trait(
    config: &ServingConfig,
    bandwidth_bps: f64,
    loss: Option<f64>,
    seed: u64,
    n: usize,
    rate_hz: f64,
) -> (ServingReport, String, String) {
    let mut cluster = build_cluster(config, bandwidth_bps, loss);
    let wl = workload(seed, config.num_tenants, n, rate_hz);
    for (id, tokens) in &wl.documents {
        cluster.store_context(*id, tokens);
    }
    let recorder = Recorder::new();
    let report = cluster.run_on(&mut VirtualClockBackend, &wl.requests, &recorder);
    let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
    let metrics = metrics_snapshot_json(&recorder.registry_snapshot());
    (report, trace, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Layer 2: for arbitrary seeds the virtual oracle is byte-identical
    /// to its own replay, and the trait route (`run_on` +
    /// `VirtualClockBackend`) is byte-identical to the direct route.
    #[test]
    fn virtual_backend_replay_and_trait_route_are_byte_identical(
        seed in 0u64..10_000,
        lossy_coin in 0u8..2,
    ) {
        let lossy = lossy_coin == 1;
        let label = if lossy { "lossy" } else { "clean" };
        let (r1, t1, m1) = scenario(label, seed);
        let (r2, t2, m2) = scenario(label, seed);
        prop_assert_eq!(&r1.outcomes, &r2.outcomes, "replay outcomes ({label})");
        prop_assert_eq!(&t1, &t2, "replay trace bytes ({label})");
        prop_assert_eq!(&m1, &m2, "replay metrics bytes ({label})");

        let (r3, t3, m3) = if lossy {
            traced_via_trait(&lossy_config(), 5e6, Some(0.25), seed, 80, 10.0)
        } else {
            traced_via_trait(&clean_config(), 5e6, None, seed, 80, 30.0)
        };
        prop_assert_eq!(&r1.outcomes, &r3.outcomes, "trait-route outcomes ({label})");
        prop_assert_eq!(&t1, &t3, "trait-route trace bytes ({label})");
        prop_assert_eq!(&m1, &m3, "trait-route metrics bytes ({label})");
    }
}

/// Per-request multiset of the shared tiling stages — the span-tree
/// shape both backends must emit identically even though the thread
/// backend's durations are wall-clock.
fn tiling_shape(spans: &[cachegen_telemetry::Span]) -> BTreeMap<u64, BTreeMap<Stage, usize>> {
    const TILING: [Stage; 5] = [
        Stage::Request,
        Stage::QueueWait,
        Stage::StoreFetch,
        Stage::CacheDecode,
        Stage::Prefill,
    ];
    let mut shape: BTreeMap<u64, BTreeMap<Stage, usize>> = BTreeMap::new();
    for span in spans {
        if TILING.contains(&span.stage) {
            *shape
                .entry(span.ctx.request)
                .or_default()
                .entry(span.stage)
                .or_insert(0) += 1;
        }
    }
    shape
}

/// Layer 3: the OS-thread backend replays the clean scenario and must
/// agree with the oracle on every request outcome, every counter, the
/// final per-shard cache bytes, and the per-request tiling span shape.
/// Its registry must also carry every key the oracle publishes; only
/// durations (and duration-derived gauges/histograms) may differ.
#[test]
fn thread_backend_agrees_with_the_oracle_on_everything_but_time() {
    let config = clean_config();
    let wl = workload(3, config.num_tenants, 80, 30.0);

    let mut virtual_cluster = build_cluster(&config, 5e6, None);
    for (id, tokens) in &wl.documents {
        virtual_cluster.store_context(*id, tokens);
    }
    let virtual_recorder = Recorder::new();
    let oracle = virtual_cluster.run_traced(&wl.requests, &virtual_recorder);

    let mut thread_cluster = build_cluster(&config, 5e6, None);
    for (id, tokens) in &wl.documents {
        thread_cluster.store_context(*id, tokens);
    }
    let thread_recorder = Recorder::new_wall();
    let (report, stats) =
        ThreadBackend::new(2).run_detailed(&mut thread_cluster, &wl.requests, &thread_recorder);
    assert!(
        stats.decode_errors.is_empty(),
        "decode errors: {:?}",
        stats.decode_errors
    );

    // Request outcomes — dispositions, TTFTs, quality — are the plan's,
    // so they match the oracle field-for-field.
    assert_eq!(report.outcomes, oracle.outcomes);
    assert_eq!(report.makespan, oracle.makespan);
    assert_eq!(report.shed_count(), oracle.shed_count());
    assert_eq!(report.degraded_count(), oracle.degraded_count());

    // Final cache state is identical shard by shard.
    let virtual_cache: Vec<u64> = virtual_cluster
        .shards()
        .iter()
        .map(|s| s.cached_bytes())
        .collect();
    let thread_cache: Vec<u64> = thread_cluster
        .shards()
        .iter()
        .map(|s| s.cached_bytes())
        .collect();
    assert_eq!(virtual_cache, thread_cache);
    assert!(
        virtual_cache.iter().sum::<u64>() > 0,
        "scenario never cached"
    );

    // Every oracle counter appears in the thread registry with the same
    // value, and every oracle gauge key exists there (values like
    // makespan are wall-clock on the thread side, so only keys match).
    let virtual_registry = virtual_recorder.registry_snapshot();
    let thread_registry = thread_recorder.registry_snapshot();
    for (name, value) in virtual_registry.counters() {
        assert_eq!(
            thread_registry.counter(name),
            Some(value),
            "counter {name} diverged"
        );
    }
    for (name, _) in virtual_registry.gauges() {
        assert!(
            thread_registry.gauge_value(name).is_some(),
            "gauge {name} missing from the thread registry"
        );
    }

    // Both traces satisfy the structural contract and tile each request
    // with the same stage multiset.
    let virtual_trace = chrome_trace_json(&virtual_recorder.spans(), &virtual_recorder.instants());
    let thread_trace = chrome_trace_json(&thread_recorder.spans(), &thread_recorder.instants());
    let virtual_summary =
        validate_chrome_trace(&virtual_trace).expect("virtual trace must validate");
    let thread_summary = validate_chrome_trace(&thread_trace).expect("thread trace must validate");
    assert_eq!(virtual_summary.requests, thread_summary.requests);
    assert_eq!(
        tiling_shape(&virtual_recorder.spans()),
        tiling_shape(&thread_recorder.spans()),
        "per-request tiling span shapes diverged"
    );
}
