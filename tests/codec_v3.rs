//! Property tests pinning the wire-v3 (interleaved rANS) contract:
//! bit-exactness against the v2 range-coder reference, per-lane
//! truncation/corruption detection, and chunk-local damage containment.

use cachegen_codec::delta::GroupLayout;
use cachegen_codec::repair::{ChunkArrivalMap, RepairCause, RepairPolicy};
use cachegen_codec::{CodecConfig, CodecProfile, EncodedKv, KvCodec};
use cachegen_llm::{SimModelConfig, SimTransformer};
use proptest::prelude::*;

/// A small encoded cache plus the codec that produced it, shared by the
/// damage-injection properties below.
fn encode_small(seed: u64, len: usize, delta: bool) -> (KvCodec, EncodedKv) {
    let model = SimTransformer::new(SimModelConfig::tiny(7));
    let mut rng = cachegen_tensor::rng::seeded(seed);
    use rand::Rng;
    let ctx: Vec<usize> = (0..len).map(|_| rng.gen::<usize>() % 64).collect();
    let cache = model.prefill(&ctx);
    let cfg = CodecConfig {
        delta_encoding: delta,
        ..CodecConfig::default()
    };
    let profile = CodecProfile::build(&cfg, &[&cache]);
    let codec = KvCodec::new(cfg, profile);
    let enc = codec.encode(&cache);
    (codec, enc)
}

proptest! {
    // Each case prefills the tiny transformer, so keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The v3 (rANS) and v2 (serial range coder) wires carry the same
    /// quantized symbols: decoding either version of the same cache is
    /// bit-identical, under both ablation arms and both decode paths.
    #[test]
    fn v3_decode_is_bit_identical_to_v2(
        seed in 0u64..500,
        len in 12usize..60,
    ) {
        // Exercise both ablation arms across cases.
        let delta = seed % 2 == 0;
        let model = SimTransformer::new(SimModelConfig::tiny(7));
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let ctx: Vec<usize> = (0..len).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = model.prefill(&ctx);
        let cfg = CodecConfig { delta_encoding: delta, ..CodecConfig::default() };
        let profile = CodecProfile::build(&cfg, &[&cache]);
        let codec = KvCodec::new(cfg, profile);
        let enc_v3 = codec.encode(&cache);
        let enc_v2 = codec.encode_v2(&cache);
        prop_assert_eq!(enc_v3.entropy_version, 3);
        prop_assert_eq!(enc_v2.entropy_version, 2);
        let dec_v3 = codec.decode(&enc_v3);
        prop_assert_eq!(&dec_v3, &codec.decode(&enc_v2));
        prop_assert_eq!(&dec_v3, &codec.decode_parallel(&enc_v3));
        // Both versions survive their own wire round-trip.
        let back = EncodedKv::from_bytes(&enc_v3.to_bytes()).unwrap();
        prop_assert_eq!(codec.decode(&back), dec_v3);
    }

    /// Truncating any v3 chunk to any proper prefix is always detected:
    /// `try_decode` errors (lane states cannot all return to the
    /// normalization base on short input) and never returns noise.
    #[test]
    fn truncated_v3_chunk_is_always_detected(
        seed in 0u64..200,
        len in 20usize..50,
        pick in 0usize..1000,
        cut in 0usize..1000,
    ) {
        let (codec, mut enc) = encode_small(seed, len, seed % 2 == 0);
        let groups = GroupLayout::new(enc.group_size, enc.tokens).num_groups();
        let flat = 2 * enc.layers * groups;
        let target = pick % flat;
        let (side, rest) = (target / (enc.layers * groups), target % (enc.layers * groups));
        let (layer, group) = (rest / groups, rest % groups);
        let chunks = if side == 0 { &mut enc.k_chunks } else { &mut enc.v_chunks };
        let chunk = &mut chunks[layer][group];
        prop_assert!(!chunk.is_empty()); // v3 chunks always carry the state header
        let keep = cut % chunk.len();
        chunk.truncate(keep);
        prop_assert!(codec.try_decode(&enc).is_err());
        prop_assert!(codec.try_decode_parallel(&enc).is_err());
    }

    /// Flipping any single bit of any v3 chunk is detected: the decoder
    /// either consumes a different byte count than the frame claims or
    /// fails the per-lane final-state check — it never silently yields a
    /// cache decoded from corrupt bytes.
    #[test]
    fn corrupt_v3_chunk_is_always_detected(
        seed in 0u64..200,
        len in 20usize..50,
        pick in 0usize..1000,
        at in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let (codec, mut enc) = encode_small(seed, len, seed % 2 == 0);
        let groups = GroupLayout::new(enc.group_size, enc.tokens).num_groups();
        let flat = 2 * enc.layers * groups;
        let target = pick % flat;
        let (side, rest) = (target / (enc.layers * groups), target % (enc.layers * groups));
        let (layer, group) = (rest / groups, rest % groups);
        let chunks = if side == 0 { &mut enc.k_chunks } else { &mut enc.v_chunks };
        let chunk = &mut chunks[layer][group];
        prop_assert!(!chunk.is_empty()); // v3 chunks always carry the state header
        let idx = at % chunk.len();
        chunk[idx] ^= 1u8 << bit;
        prop_assert!(codec.try_decode(&enc).is_err());
    }

    /// Chunks stay independent on the v3 wire: damaging one chunk is
    /// repaired (and reported) without perturbing any other chunk's
    /// decoded rows — the interleaved lanes never leak state across the
    /// per-(layer, token-group) chunk boundary.
    #[test]
    fn v3_damage_is_chunk_local(
        seed in 0u64..200,
        len in 20usize..50,
        pick in 0usize..1000,
        at in 0usize..10_000,
    ) {
        let (codec, enc) = encode_small(seed, len, true);
        let clean = codec.decode(&enc);
        let layout = GroupLayout::new(enc.group_size, enc.tokens);
        let groups = layout.num_groups();
        let flat = 2 * enc.layers * groups;
        let target = pick % flat;
        let (side, rest) = (target / (enc.layers * groups), target % (enc.layers * groups));
        let (layer, group) = (rest / groups, rest % groups);
        let is_k = side == 0;
        let mut damaged = enc.clone();
        let chunks = if is_k { &mut damaged.k_chunks } else { &mut damaged.v_chunks };
        let chunk = &mut chunks[layer][group];
        prop_assert!(!chunk.is_empty()); // v3 chunks always carry the state header
        let idx = at % chunk.len();
        chunk[idx] ^= 0x10;
        let arrivals = ChunkArrivalMap::full(enc.layers, groups);
        let repaired = codec
            .decode_with_repairs(&damaged, &arrivals, RepairPolicy::ZeroFill)
            .unwrap();
        // Exactly the damaged chunk is reported, as arrived-but-corrupt.
        prop_assert_eq!(repaired.repairs.len(), 1);
        let r = &repaired.repairs[0];
        prop_assert_eq!((r.is_k, r.layer, r.group), (is_k, layer, group));
        prop_assert!(matches!(r.cause, RepairCause::Corrupt(_)));
        // Every row outside the damaged (side, layer, group) region is
        // bit-identical to the clean decode.
        let (start, end) = layout.group_range(group);
        let channels = enc.channels;
        let tokens = enc.tokens;
        for (side_idx, (got, want)) in [
            (repaired.cache.k().data(), clean.k().data()),
            (repaired.cache.v().data(), clean.v().data()),
        ]
        .into_iter()
        .enumerate()
        {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                let l = i / (tokens * channels);
                let t = (i / channels) % tokens;
                let in_damaged =
                    (side_idx == 0) == is_k && l == layer && t >= start && t < end;
                if !in_damaged {
                    prop_assert!(
                        g.to_bits() == w.to_bits(),
                        "leak at side {} layer {} token {} (damaged: {:?})",
                        side_idx, l, t, (is_k, layer, group)
                    );
                }
            }
        }
    }
}
