//! Workspace smoke test for the codec's core invariant.
//!
//! `crates/codec/src/lib.rs` states: *the only lossy stage is quantization —
//! `decode(encode(kv))` equals the quantized cache exactly.* These tests
//! assert that literally: the expected quantized cache is reconstructed
//! independently from public pieces (group layout, bin quantizers, the
//! wire-rounded scales shipped in the stream) and compared bit-for-bit
//! against what the decoder produces, proving the arithmetic-coding stage
//! is lossless end to end.

use cachegen_codec::delta::GroupLayout;
use cachegen_codec::{index_to_symbol, symbol_to_index, CodecConfig, EncodedKv, KvCodec};
use cachegen_codec::{profile::CodecProfile, rc};
use cachegen_llm::{KvCache, SimModelConfig, SimTransformer};
use cachegen_quant::BinQuantizer;
use cachegen_tensor::Tensor;
use proptest::prelude::*;

/// Reference quantizer: mirrors the encoder's quantize-reconstruct walk
/// (anchor rows, then anchor-relative deltas) using only public APIs and
/// the scales actually shipped in `enc`, with no entropy coding involved.
fn quantized_reference(cache: &KvCache, cfg: &CodecConfig, enc: &EncodedKv) -> KvCache {
    let (layers, tokens, channels) = (cache.layers(), cache.tokens(), cache.channels());
    let layout = GroupLayout::new(enc.group_size, tokens);
    let clamp = |s: f32| index_to_symbol(symbol_to_index(s.round() as i32)) as f32;
    let mut out_k = Tensor::zeros(&[layers, tokens, channels]);
    let mut out_v = Tensor::zeros(&[layers, tokens, channels]);
    for (is_k, src, dst) in [
        (true, cache.k(), &mut out_k),
        (false, cache.v(), &mut out_v),
    ] {
        let (anchor_scales, delta_scales) = if is_k {
            (&enc.scales[0], &enc.scales[1])
        } else {
            (&enc.scales[2], &enc.scales[3])
        };
        for l in 0..layers {
            let anchor_q = BinQuantizer::new(cfg.anchor_bin);
            let delta_q = BinQuantizer::new(cfg.bins.bin_for_layer(l, layers));
            let slab = src.slab(l);
            let out = dst.slab_mut(l);
            for (anchor, members) in layout.groups() {
                let mut recon_anchor = vec![0.0f32; channels];
                for (c, r) in recon_anchor.iter_mut().enumerate() {
                    let step = anchor_q.step(anchor_scales[l][c]);
                    *r = clamp(slab[anchor * channels + c] / step) * step;
                    out[anchor * channels + c] = *r;
                }
                for t in members {
                    for c in 0..channels {
                        let step = delta_q.step(delta_scales[l][c]);
                        let d = slab[t * channels + c] - recon_anchor[c];
                        out[t * channels + c] = recon_anchor[c] + clamp(d / step) * step;
                    }
                }
            }
        }
    }
    KvCache::from_tensors(out_k, out_v)
}

/// Bitwise equality, with a diagnostic on the first mismatch.
fn assert_bit_identical(got: &KvCache, want: &KvCache) {
    assert_eq!(got.layers(), want.layers());
    assert_eq!(got.tokens(), want.tokens());
    assert_eq!(got.channels(), want.channels());
    for (name, a, b) in [("K", got.k(), want.k()), ("V", got.v(), want.v())] {
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{name}[{i}]: decoded {x} != quantized reference {y}"
            );
        }
    }
}

#[test]
fn decode_of_encode_equals_quantized_cache_exactly() {
    let model = SimTransformer::new(SimModelConfig::tiny(3));
    let ctx: Vec<usize> = (0..47).map(|i| (i * 11 + 2) % 64).collect();
    let cache = model.prefill(&ctx);
    let cfg = CodecConfig::default();
    let profile = CodecProfile::build(&cfg, &[&cache]);
    let codec = KvCodec::new(cfg.clone(), profile);
    let enc = codec.encode(&cache);
    let dec = codec.decode(&enc);
    assert_bit_identical(&dec, &quantized_reference(&cache, &cfg, &enc));
    // Parallel decode is bit-identical too, and the wire container is
    // transparent.
    assert_bit_identical(&codec.decode_parallel(&enc), &dec);
    let wired = EncodedKv::from_bytes(&enc.to_bytes()).expect("container parses");
    assert_bit_identical(&codec.decode(&wired), &dec);
}

/// A raw range-coder sanity check at the workspace level: the entropy
/// stage on its own is lossless (so any codec loss must come from
/// quantization), and it consumes its stream exactly.
#[test]
fn range_coder_stage_is_lossless() {
    let table = cachegen_codec::symbol_model::FreqTable::from_counts(&[5, 1, 90, 4, 400, 7]);
    let symbols: Vec<usize> = (0..5_000).map(|i| (i * i + i / 3) % 6).collect();
    let mut enc = rc::Encoder::new();
    for &s in &symbols {
        enc.encode(&table, s);
    }
    let bytes = enc.finish();
    let mut dec = rc::Decoder::new(&bytes);
    for &s in &symbols {
        assert_eq!(dec.decode(&table), s);
    }
    assert_eq!(dec.bytes_consumed(), bytes.len());
    assert_eq!(dec.overrun_bytes(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating any entropy chunk of a valid stream is *reported* — the
    /// decoder must never silently emit noise past end-of-stream. (The
    /// pre-chunking decoder did exactly that: its bit reader yielded
    /// synthetic zeros forever.)
    #[test]
    fn truncated_chunks_are_reported_not_decoded(
        seed in 0u64..10_000,
        cut_num in 1usize..8, // fraction of the chunk kept: cut_num/8
        pick in 0usize..1_000,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let (layers, tokens, channels) = (2usize, 25usize, 6usize);
        let n = layers * tokens * channels;
        let mk = |rng: &mut _| {
            Tensor::from_vec(
                &[layers, tokens, channels],
                cachegen_tensor::rng::normal_vec(rng, n, 0.0, 2.0),
            )
        };
        let cache = KvCache::from_tensors(mk(&mut rng), mk(&mut rng));
        let cfg = CodecConfig::default();
        let profile = CodecProfile::build(&cfg, &[&cache]);
        let codec = KvCodec::new(cfg, profile);
        let mut enc = codec.encode(&cache);
        // Pick a chunk and truncate it (keep at least one byte missing).
        let groups = enc.num_groups();
        let layer = pick % layers;
        let group = (pick / layers) % groups;
        let side_k = pick % 2 == 0;
        let chunk = if side_k {
            &mut enc.k_chunks[layer][group]
        } else {
            &mut enc.v_chunks[layer][group]
        };
        let keep = (chunk.len() * cut_num / 8).min(chunk.len() - 1);
        chunk.truncate(keep);
        prop_assert!(codec.try_decode(&enc).is_err(), "truncation must be reported");
        prop_assert!(codec.try_decode_parallel(&enc).is_err());
    }

    /// The exact-quantization invariant holds for arbitrary random small
    /// caches (not just transformer-produced ones), across geometries and
    /// group sizes.
    #[test]
    fn random_small_caches_round_trip_exactly(
        layers in 1usize..4,
        tokens in 1usize..40,
        channels in 1usize..10,
        group in 1usize..14,
        seed in 0u64..10_000,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let n = layers * tokens * channels;
        let mk = |rng: &mut _| {
            Tensor::from_vec(
                &[layers, tokens, channels],
                cachegen_tensor::rng::normal_vec(rng, n, 0.0, 2.5),
            )
        };
        let cache = KvCache::from_tensors(mk(&mut rng), mk(&mut rng));
        let cfg = CodecConfig {
            group_size: group,
            ..CodecConfig::default()
        };
        let profile = CodecProfile::build(&cfg, &[&cache]);
        let codec = KvCodec::new(cfg.clone(), profile);
        let enc = codec.encode(&cache);
        let dec = codec.decode(&enc);
        assert_bit_identical(&dec, &quantized_reference(&cache, &cfg, &enc));
        assert_bit_identical(&codec.decode_parallel(&enc), &dec);
        // And the loss that remains is exactly the bounded quantization
        // loss: anchors err at most half an anchor step; other tokens at
        // most half a delta step, because their delta is taken against the
        // *reconstructed* anchor, whose own error therefore cancels. The
        // only escape is the ±127-step symbol clamp.
        let layout = GroupLayout::new(enc.group_size, tokens);
        let clamp_binds = |quantized: f32| !(-128.0..=127.0).contains(&quantized);
        for (is_k, src, got) in [(true, cache.k(), dec.k()), (false, cache.v(), dec.v())] {
            let (anchor_scales, delta_scales) = if is_k {
                (&enc.scales[0], &enc.scales[1])
            } else {
                (&enc.scales[2], &enc.scales[3])
            };
            for l in 0..layers {
                let anchor_q = BinQuantizer::new(cfg.anchor_bin);
                let delta_q = BinQuantizer::new(cfg.bins.bin_for_layer(l, layers));
                for (anchor, members) in layout.groups() {
                    for c in 0..channels {
                        let (sv, gv) = (src.slab(l), got.slab(l));
                        let step = anchor_q.step(anchor_scales[l][c]);
                        let err = (sv[anchor * channels + c] - gv[anchor * channels + c]).abs();
                        prop_assert!(
                            err <= step * 0.5 + 1e-4
                                || clamp_binds((sv[anchor * channels + c] / step).round()),
                            "anchor err {err} > half-step {}", step * 0.5
                        );
                        for t in members.clone() {
                            let step = delta_q.step(delta_scales[l][c]);
                            let d = sv[t * channels + c] - gv[anchor * channels + c];
                            let err = (sv[t * channels + c] - gv[t * channels + c]).abs();
                            prop_assert!(
                                err <= step * 0.5 + 1e-4 || clamp_binds((d / step).round()),
                                "delta err {err} > half-step {}", step * 0.5
                            );
                        }
                    }
                }
            }
        }
    }
}
