//! Property and acceptance tests for the FEC subsystem (XOR fast path
//! and the GF(256) Reed–Solomon multi-erasure layer):
//!
//! (a) any *single* loss per parity group is recovered byte-identically
//!     (pure XOR over the survivors, truncated to the lost length), and
//!     any ≤ r losses per group under RS parity;
//! (a') GF(256) field axioms (associativity, commutativity,
//!     distributivity, mul/inv round trip) and the r = 1 ≡ XOR pinning:
//!     single-parity RS is the PR 5 XOR wire format, bit for bit, at the
//!     byte level *and* at the delivery level;
//! (a'') the interleaver burst-coverage bound: a burst of ≤ stride·r
//!     consecutive protected packets never exceeds r losses in any
//!     group — every burst that short is FEC-recoverable by
//!     construction;
//! (b) recovery is order-free: permuted/deduplicated survivor sets
//!     reconstruct the same bytes, and reorder/duplicate link faults
//!     leave the end-to-end result deterministic;
//! (c) backward compatibility: FEC off (`k = ∞`) delivers bit-identically
//!     to the pre-FEC transport — same packets, same fault draws, same
//!     timeline, same losses;
//! (d) the 10%-loss acceptance headline: with the default `fec_overhead`
//!     and the FEC→repair→refetch ladder, `load_context` ends with
//!     `repaired_fraction == 0` on ≥95% of contexts, loss-induced TTFT
//!     inflation ≤1.05× the (same-config) lossless pace, parity overhead
//!     ≤15%, and zero retransmit budget consumed.

use cachegen::{load_context, CacheGenEngine, EngineConfig, FecOverhead, LoadParams, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::fec::{xor_parity, xor_recover};
use cachegen_net::{gf256, BandwidthTrace, FecGroups, Link, PacketFaults, RsCode};
use cachegen_streamer::{deliver_schedule, AdaptPolicy, ChunkSchedule, PacketId};
use cachegen_workloads::{workload_rng, Dataset};
use proptest::prelude::*;
use rand::Rng;

// ---------------------------------------------------------------------
// (a) + (b): byte-level XOR recovery properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single loss per parity group is recovered byte-identically,
    /// whatever the member sizes.
    #[test]
    fn single_loss_per_group_recovers_byte_identically(
        seed in 0u64..10_000,
        sizes in proptest::collection::vec(0usize..60, 2..8),
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| rng.gen::<u8>()).collect())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let parity = xor_parity(&refs);
        for (lost, want) in payloads.iter().enumerate() {
            let survivors: Vec<&[u8]> = refs
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != lost)
                .map(|(_, p)| *p)
                .collect();
            let got = xor_recover(&survivors, &parity, want.len()).unwrap();
            prop_assert_eq!(&got, want, "lost member {}", lost);
        }
    }

    /// Recovery is independent of survivor order (reorder) and of the
    /// deduplicated delivery set (duplicate): any permutation of the
    /// survivors reconstructs the same bytes.
    #[test]
    fn recovery_is_order_free(
        seed in 0u64..10_000,
        n in 3usize..8,
        rot in 1usize..7,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let payloads: Vec<Vec<u8>> = (0..n)
            .map(|_| (0..rng.gen::<usize>() % 50).map(|_| rng.gen::<u8>()).collect())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let parity = xor_parity(&refs);
        let lost = seed as usize % n;
        let mut survivors: Vec<&[u8]> = refs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != lost)
            .map(|(_, p)| *p)
            .collect();
        let in_order = xor_recover(&survivors, &parity, payloads[lost].len()).unwrap();
        let shift = rot % survivors.len().max(1);
        survivors.rotate_left(shift);
        survivors.reverse();
        let shuffled = xor_recover(&survivors, &parity, payloads[lost].len()).unwrap();
        prop_assert_eq!(&in_order, &shuffled);
        prop_assert_eq!(&in_order, &payloads[lost]);
    }

    /// Every striped grouping recovers any one loss per group end to
    /// end: parity built from the group members, one member dropped per
    /// group, XOR puts the exact bytes back.
    #[test]
    fn striped_groups_recover_one_loss_each(
        seed in 0u64..10_000,
        n in 2usize..40,
        k in 1usize..9,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let payloads: Vec<Vec<u8>> = (0..n)
            .map(|_| (0..10 + rng.gen::<usize>() % 30).map(|_| rng.gen::<u8>()).collect())
            .collect();
        let fec = FecGroups::striped(n, k);
        for g in 0..fec.num_groups() {
            let members = fec.members(g);
            let refs: Vec<&[u8]> = members.iter().map(|&i| payloads[i].as_slice()).collect();
            let parity = xor_parity(&refs);
            let lost_pos = seed as usize % members.len();
            let survivors: Vec<&[u8]> = refs
                .iter()
                .enumerate()
                .filter(|&(p, _)| p != lost_pos)
                .map(|(_, x)| *x)
                .collect();
            let lost_idx = members[lost_pos];
            let got = xor_recover(&survivors, &parity, payloads[lost_idx].len()).unwrap();
            prop_assert_eq!(&got, &payloads[lost_idx]);
        }
    }
}

// ---------------------------------------------------------------------
// (a'): GF(256) field axioms, RS multi-erasure recovery, r = 1 ≡ XOR.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// GF(256) field axioms on arbitrary triples: commutativity,
    /// associativity, distributivity over XOR-addition, and the
    /// mul/inv/div round trips the Cauchy construction relies on.
    #[test]
    fn gf256_field_axioms(a in 0u16..256, b in 0u16..256, c in 0u16..256) {
        let (a, b, c) = (a as u8, b as u8, c as u8);
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(
            gf256::mul(gf256::mul(a, b), c),
            gf256::mul(a, gf256::mul(b, c))
        );
        // Distributivity: a·(b ⊕ c) = a·b ⊕ a·c (addition is XOR).
        prop_assert_eq!(
            gf256::mul(a, b ^ c),
            gf256::mul(a, b) ^ gf256::mul(a, c)
        );
        if a != 0 {
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            if b != 0 {
                // div round trip: (a / b) · b = a.
                prop_assert_eq!(gf256::mul(gf256::div(a, b), b), a);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any ≤ r losses per group — data and parity packets alike, chosen
    /// adversarially by the loss mask — recover byte-identically under
    /// RS parity, whatever the member sizes.
    #[test]
    fn rs_recovers_any_r_losses_byte_identically(
        seed in 0u64..10_000,
        sizes in proptest::collection::vec(0usize..60, 2..10),
        r in 1usize..4,
        mask in 0u32..u32::MAX,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| rng.gen::<u8>()).collect())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let m = refs.len();
        let code = RsCode::new(m, r).unwrap();
        let parity = code.parity(&refs);
        // Keep only the first r set bits of the mask: ≤ r total losses.
        let mut budget = r;
        let lost: Vec<bool> = (0..m + r)
            .map(|i| {
                let hit = mask & (1 << (i % 32)) != 0 && budget > 0;
                if hit { budget -= 1; }
                hit
            })
            .collect();
        let shards: Vec<Option<&[u8]>> =
            (0..m).map(|i| (!lost[i]).then_some(refs[i])).collect();
        let pshards: Vec<Option<&[u8]>> = (0..r)
            .map(|j| (!lost[m + j]).then_some(parity[j].as_slice()))
            .collect();
        let recovered = code.recover(&shards, &pshards).unwrap();
        let lost_data: Vec<usize> = (0..m).filter(|&i| lost[i]).collect();
        prop_assert_eq!(recovered.len(), lost_data.len());
        for (i, payload) in recovered {
            prop_assert!(lost[i]);
            prop_assert_eq!(&payload[..refs[i].len()], refs[i], "symbol {}", i);
            prop_assert!(payload[refs[i].len()..].iter().all(|&b| b == 0));
        }
    }

    /// r = 1 ≡ XOR at the byte level: the single-parity RS payload is
    /// bit-identical to `xor_parity`, and its single-loss recovery is
    /// bit-identical to `xor_recover` — the PR 5 wire format is a
    /// special case of the RS code, not a parallel implementation.
    #[test]
    fn rs_r1_is_bit_identical_to_xor(
        seed in 0u64..10_000,
        sizes in proptest::collection::vec(0usize..60, 2..10),
        lost in 0usize..10,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let payloads: Vec<Vec<u8>> = sizes
            .iter()
            .map(|&n| (0..n).map(|_| rng.gen::<u8>()).collect())
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let code = RsCode::new(refs.len(), 1).unwrap();
        let parity = code.parity(&refs);
        prop_assert_eq!(&parity[0], &xor_parity(&refs));
        let lost = lost % refs.len();
        let shards: Vec<Option<&[u8]>> =
            (0..refs.len()).map(|i| (i != lost).then_some(refs[i])).collect();
        let rs_got = code.recover(&shards, &[Some(&parity[0])]).unwrap();
        let survivors: Vec<&[u8]> = (0..refs.len())
            .filter(|&i| i != lost)
            .map(|i| refs[i])
            .collect();
        let xor_got =
            xor_recover(&survivors, &parity[0], parity[0].len()).unwrap();
        prop_assert_eq!(rs_got.len(), 1);
        prop_assert_eq!(rs_got[0].0, lost);
        prop_assert_eq!(&rs_got[0].1, &xor_got);
    }

    /// The interleaver burst-coverage bound: striping with stride
    /// `g = ceil(n / k)` puts at most `ceil(w / g)` of any `w`
    /// consecutive protected packets in one group, so a burst of up to
    /// `stride·r` packets never exceeds `r` losses per group — every
    /// such burst is FEC-recoverable by construction.
    #[test]
    fn striped_burst_coverage_bound(
        n in 2usize..80,
        k in 1usize..12,
        r in 1usize..4,
        burst_start in 0usize..80,
    ) {
        let fec = FecGroups::striped_rs(n, k, r);
        let g = fec.num_groups();
        let burst_len = (g * r).min(n);
        let start = burst_start % n;
        let mut lost_per_group = vec![0usize; g];
        for i in start..(start + burst_len).min(n) {
            if let Some(grp) = fec.group_of(i) {
                lost_per_group[grp] += 1;
            }
        }
        for (grp, &lost) in lost_per_group.iter().enumerate() {
            prop_assert!(
                lost <= fec.repairs_of(grp),
                "burst [{}, {}) puts {} losses in group {} (r = {})",
                start, start + burst_len, lost, grp, fec.repairs_of(grp)
            );
        }
    }
}

/// r = 1 ≡ XOR at the *delivery* level: `FecOverhead::Rs {{ k, r: 1 }}`
/// produces the identical wire order, fault draws, recovery set, and
/// timeline as the PR 5 `FecOverhead::Uniform(k)` path on arbitrary
/// schedules and faults.
#[test]
fn rs_r1_delivery_is_bit_identical_to_uniform_xor() {
    use cachegen_streamer::FecOverhead;
    for (seed, n, k, loss_pct) in [
        (1u64, 12usize, 4usize, 10usize),
        (2, 24, 6, 25),
        (3, 7, 3, 40),
        (4, 30, 5, 15),
    ] {
        let entries: Vec<(PacketId, u64)> = (0..n)
            .map(|i| {
                (
                    PacketId {
                        group: i / 4,
                        layer: i % 4,
                        is_k: i % 2 == 0,
                    },
                    400 + 31 * i as u64,
                )
            })
            .collect();
        let sched = ChunkSchedule::priority_ordered(entries);
        let sizes = sched.packet_sizes();
        let xor_groups = FecOverhead::Uniform(k).groups_for(0, &sizes);
        let rs_groups = FecOverhead::Rs { k, r: 1 }.groups_for(0, &sizes);
        let mk_link = || {
            Link::new(BandwidthTrace::constant(1e7), 0.01)
                .with_packet_faults(PacketFaults::loss(loss_pct as f64 / 100.0), seed)
        };
        let xor = deliver_schedule(&sched, &mut mk_link(), 0.0, 1, 1, xor_groups.as_ref());
        let rs = deliver_schedule(&sched, &mut mk_link(), 0.0, 1, 1, rs_groups.as_ref());
        assert_eq!(xor, rs, "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// (c): FEC off is bit-identical to the pre-FEC transport.
// ---------------------------------------------------------------------

/// The PR 4 delivery loop, reimplemented verbatim as the compatibility
/// oracle: send the schedule, NACK-gated retransmit rounds while the
/// budget lasts, report the rest lost.
fn pre_fec_delivery(
    sched: &ChunkSchedule,
    link: &mut Link,
    start: f64,
    batch: u64,
    mut budget: usize,
) -> (f64, f64, Vec<(PacketId, u64)>, u32, u64) {
    let mut pending: Vec<(PacketId, u64)> = sched.entries().to_vec();
    let mut wire_t = start;
    let mut finish = start;
    let mut lost = Vec::new();
    let mut retransmits = 0u32;
    let mut delivered_bytes = 0u64;
    loop {
        let sizes: Vec<u64> = pending.iter().map(|&(_, b)| b * batch).collect();
        let res = link.send_packets(&sizes, wire_t);
        wire_t = res.wire_finish;
        finish = finish.max(res.last_arrival);
        delivered_bytes += res.delivered_bytes;
        let failed = res.failed();
        if failed.is_empty() {
            break;
        }
        if budget == 0 {
            lost.extend(failed.iter().map(|&i| pending[i]));
            break;
        }
        let nack_at = res.last_arrival + link.propagation();
        let resend = failed.len().min(budget);
        lost.extend(failed[resend..].iter().map(|&i| pending[i]));
        pending = failed[..resend].iter().map(|&i| pending[i]).collect();
        budget -= resend;
        retransmits += resend as u32;
        wire_t = wire_t.max(nack_at);
    }
    (finish, wire_t, lost, retransmits, delivered_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `k = ∞` (FEC off) is bit-identical to the pre-FEC transport on
    /// arbitrary schedules, faults, and budgets: same losses, same
    /// retransmissions, same timeline, same delivered bytes.
    #[test]
    fn fec_off_is_bit_identical_to_the_pre_fec_transport(
        seed in 0u64..100_000,
        n in 1usize..24,
        budget in 0usize..4,
        loss_pct in 0usize..40,
        reorder_pct in 0usize..30,
        dup_pct in 0usize..20,
        trunc_pct in 0usize..20,
    ) {
        let entries: Vec<(PacketId, u64)> = (0..n)
            .map(|i| {
                (
                    PacketId { group: i / 4, layer: i % 4, is_k: i % 2 == 0 },
                    500 + 37 * i as u64,
                )
            })
            .collect();
        let sched = ChunkSchedule::priority_ordered(entries);
        let faults = PacketFaults {
            loss: loss_pct as f64 / 100.0,
            reorder: reorder_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            truncate: trunc_pct as f64 / 100.0,
            ..PacketFaults::none()
        };
        let mk_link = || {
            Link::new(BandwidthTrace::constant(1e7), 0.01).with_packet_faults(faults, seed)
        };
        let d = deliver_schedule(&sched, &mut mk_link(), 1.5, 2, budget, None);
        let (finish, wire_free, lost, retransmits, delivered) =
            pre_fec_delivery(&sched, &mut mk_link(), 1.5, 2, budget);
        prop_assert_eq!(d.finish, finish);
        prop_assert_eq!(d.wire_free, wire_free);
        prop_assert_eq!(&d.lost, &lost);
        prop_assert_eq!(d.retransmits, retransmits);
        prop_assert_eq!(d.delivered_bytes, delivered);
        prop_assert_eq!(d.parity_bytes, 0);
        prop_assert!(d.fec_recovered.is_empty());
    }
}

// ---------------------------------------------------------------------
// (b, end to end) + (d): ladder acceptance at 10% i.i.d. loss.
// ---------------------------------------------------------------------

const BW_BPS: f64 = 1.0e6;
const PROPAGATION: f64 = 0.1;

fn scenario() -> (CacheGenEngine, cachegen_llm::KvCache) {
    let mut rng = workload_rng(900);
    let profile = Dataset::LongChat.generate(&mut rng, 512, 90).tokens;
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &[profile],
    );
    let ctx = Dataset::LongChat.generate(&mut rng, 512, 90).tokens;
    let reference = engine.calculate_kv(&ctx);
    (engine, reference)
}

fn run_ladder(
    engine: &CacheGenEngine,
    reference: &cachegen_llm::KvCache,
    loss: f64,
    seed: u64,
    fec: FecOverhead,
) -> cachegen::LoadOutcome {
    let mut link = Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION)
        .with_packet_faults(PacketFaults::loss(loss), seed);
    let params = LoadParams {
        policy: AdaptPolicy::FixedLevel(2),
        prior_throughput_bps: Some(BW_BPS),
        repair: RepairPolicy::Refetch,
        retransmit_budget: 0,
        fec_overhead: fec,
        ..LoadParams::default()
    };
    load_context(engine, reference, &mut link, &params)
}

/// The acceptance headline: at 10% seeded i.i.d. packet loss with the
/// default `fec_overhead` and the FEC→repair→refetch ladder,
/// `load_context` finishes with `repaired_fraction == 0` on ≥95% of
/// contexts, loss-induced TTFT inflation stays ≤1.05× the same-config
/// lossless pace, measured parity overhead stays ≤15%, and the
/// retransmit budget is never consumed.
#[test]
fn fec_ladder_acceptance_at_ten_percent_loss() {
    let (engine, reference) = scenario();
    let fec = FecOverhead::paper_default();
    let lossless = run_ladder(&engine, &reference, 0.0, 0, fec.clone());
    let lossless_ttft = lossless.stream.finish;
    assert!(lossless.parity_bytes > 0, "parity rides clean links too");

    let seeds: Vec<u64> = (0..10).map(|i| 1000 + 17 * i).collect();
    let mut clean_contexts = 0usize;
    let mut total_recovered = 0usize;
    let mut total_repaired_at_ttft = 0usize;
    for &seed in &seeds {
        let out = run_ladder(&engine, &reference, 0.10, seed, fec.clone());
        // TTFT: no NACK stalls — within 1.05× of the same-config
        // lossless pace (drops still spend wire time, so it can also be
        // marginally *faster* when a tail packet drops).
        assert!(
            out.stream.finish <= 1.05 * lossless_ttft,
            "seed {seed}: TTFT {} vs lossless {lossless_ttft}",
            out.stream.finish
        );
        // Bandwidth overhead: parity bytes over data bytes.
        let overhead = out.parity_bytes as f64 / out.stream.bytes_sent as f64;
        assert!(overhead <= 0.15, "seed {seed}: overhead {overhead}");
        // The FEC rung never touches the retransmit budget.
        assert_eq!(out.stream.retransmits(), 0);
        // The refetch rung restored whatever FEC could not recover: the
        // final cache holds zero policy-reconstructed bytes.
        if out.repaired_fraction == 0.0 {
            clean_contexts += 1;
        }
        total_recovered += out.fec_recovered.len();
        total_repaired_at_ttft += out.repairs.len();
        // And the restored cache is bit-exact vs the lossless ladder.
        assert_eq!(out.cache, lossless.cache, "seed {seed}");
    }
    assert!(
        clean_contexts as f64 >= 0.95 * seeds.len() as f64,
        "{clean_contexts}/{} contexts ended clean",
        seeds.len()
    );
    assert!(
        total_recovered > 0,
        "10% loss across {} seeds must exercise parity recovery",
        seeds.len()
    );
    // FEC is the first rung for a reason: it absorbs a meaningful share
    // of the losses before repair/refetch sees them.
    assert!(
        total_recovered * 2 >= total_repaired_at_ttft,
        "parity should absorb a meaningful share: {total_recovered} recovered vs {total_repaired_at_ttft} repaired"
    );
}

/// End-to-end determinism under reorder + duplicate faults: the same
/// seed reproduces the identical cache, FEC provenance, and timeline;
/// recovery does not depend on arrival order.
#[test]
fn fec_recovery_is_deterministic_under_reorder_and_duplicate() {
    let (engine, reference) = scenario();
    let run = |seed: u64| {
        let faults = PacketFaults {
            loss: 0.08,
            reorder: 0.5,
            duplicate: 0.25,
            ..PacketFaults::none()
        };
        let mut link = Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION)
            .with_packet_faults(faults, seed);
        let params = LoadParams {
            policy: AdaptPolicy::FixedLevel(2),
            prior_throughput_bps: Some(BW_BPS),
            repair: RepairPolicy::AnchorInterpolate,
            retransmit_budget: 0,
            fec_overhead: FecOverhead::paper_default(),
            ..LoadParams::default()
        };
        load_context(&engine, &reference, &mut link, &params)
    };
    let a = run(5);
    let b = run(5);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.fec_recovered, b.fec_recovered);
    assert_eq!(a.repairs, b.repairs);
    assert_eq!(a.stream.chunks, b.stream.chunks);
    assert!(
        a.fec_recovered.iter().any(|(_, r)| {
            r.cause == cachegen_codec::RepairCause::RecoveredByFec
                && r.kind == cachegen_codec::RepairKind::Intact
        }) || a.stream.fec_recovered_packets() == 0,
        "recovered chunks carry RecoveredByFec/Intact provenance"
    );
    // A different seed draws a different fault pattern (non-vacuous).
    let c = run(6);
    assert_ne!(a.stream.chunks, c.stream.chunks);
}

/// Regression for the byte-weighting bugfix: `repaired_fraction` weighs
/// each hole by its packet's byte length (the head packet carries the
/// container and is ~10× a median packet), not by chunk count.
#[test]
fn repaired_fraction_is_byte_weighted() {
    let (engine, reference) = scenario();
    // No FEC, zero-fill, 10% loss: holes stay in the final cache.
    let mut link = Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION)
        .with_packet_faults(PacketFaults::loss(0.10), 2024);
    let params = LoadParams {
        policy: AdaptPolicy::FixedLevel(2),
        prior_throughput_bps: Some(BW_BPS),
        repair: RepairPolicy::ZeroFill,
        retransmit_budget: 0,
        fec_overhead: FecOverhead::Off,
        ..LoadParams::default()
    };
    let out = load_context(&engine, &reference, &mut link, &params);
    assert!(!out.repairs.is_empty(), "seeded 10% loss leaves holes");
    // Expected value, recomputed from the stream outcome: lost payload
    // bytes over the KV payload bytes actually streamed.
    let lost_bytes: u64 = out.stream.chunks.iter().map(|c| c.lost_bytes()).sum();
    let data_bytes: u64 = out.stream.bytes_sent;
    let expect = lost_bytes as f64 / data_bytes as f64;
    assert!(
        (out.repaired_fraction - expect).abs() < 1e-12,
        "byte-weighted fraction {} != expected {expect}",
        out.repaired_fraction
    );
    // And it differs from the old per-chunk counting whenever packet
    // sizes are uneven. The old formula divided repair count by the
    // total entropy-chunk count (2 × layers × groups per stream chunk) —
    // reconstruct it and check the two disagree here, because the
    // container-bearing head packet is ~10× a median packet.
    let enc = engine.encode_at_level(&reference, 2);
    let chunks_per_stream_chunk = 2 * enc.layers * 3; // 30-token chunks → 3 anchor groups
    let count_based =
        out.repairs.len() as f64 / (out.stream.chunks.len() * chunks_per_stream_chunk) as f64;
    assert!(
        (out.repaired_fraction - count_based).abs() > 1e-6,
        "byte weighting must diverge from chunk counting: {} vs {count_based}",
        out.repaired_fraction
    );
    // A lost head packet (group 0, layer 0, K) carries the container
    // (header + scale tables) on top of its entropy chunk, so its byte
    // weight strictly exceeds the uniform per-packet weight.
    let head = PacketId {
        group: 0,
        layer: 0,
        is_k: true,
    };
    for c in &out.stream.chunks {
        if let Some(&(_, head_bytes)) = c.lost.iter().find(|&&(id, _)| id == head) {
            let uniform = c.bytes / (chunks_per_stream_chunk as u64);
            assert!(
                head_bytes > 2 * uniform,
                "head packet weight {head_bytes} must dwarf the uniform share {uniform}"
            );
        }
    }
}
