//! Streaming-ingest integration: chat sessions append token deltas to
//! their stored contexts between queries, and the serving cluster keeps
//! serving the grown contexts correctly (ROADMAP "Workload breadth").

use cachegen::EngineConfig;
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link};
use cachegen_serving::{Disposition, ServingCluster, ServingConfig};
use cachegen_workloads::{workload_rng, ChatAppendGen};

const TENANTS: usize = 2;

fn build_cluster() -> ServingCluster {
    let cfg = ServingConfig {
        num_shards: 2,
        num_tenants: TENANTS,
        ..ServingConfig::default()
    };
    let links = (0..cfg.num_shards)
        .map(|_| Link::new(BandwidthTrace::constant(5e6), 0.0))
        .collect();
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        cfg,
        &profile,
        links,
    )
}

#[test]
fn chat_append_sessions_serve_growing_contexts() {
    let workload = ChatAppendGen::new(64, 4, 60, 20)
        .with_rounds(3)
        .generate(&mut workload_rng(17), TENANTS);
    let mut cluster = build_cluster();

    let mut ttft_by_round: Vec<f64> = Vec::new();
    for round in 0..workload.num_rounds() {
        // Ingest: re-store every session's grown context under its stable
        // id (the append only extends the token axis — group alignment
        // means the head chunks re-encode byte-identically).
        for s in 0..workload.sessions.len() {
            let ctx = workload.context_at(s, round);
            cluster.store_context(workload.sessions[s].context_id, &ctx);
        }
        let report = cluster.run(&workload.round_requests(round));
        assert_eq!(report.outcomes.len(), 4, "one query per session");
        for o in &report.outcomes {
            let Disposition::Completed { ttft, quality, .. } = o.disposition else {
                panic!("ingest rounds are not overloaded; nothing sheds");
            };
            assert!(ttft > 0.0 && quality > 0.8, "ttft {ttft} quality {quality}");
        }
        let mean: f64 = report.ttfts(None).iter().sum::<f64>() / report.completed().count() as f64;
        ttft_by_round.push(mean);
    }
    // Growing contexts cost more to load: the last round's mean TTFT must
    // exceed the first round's (60 → 120 tokens of context).
    assert!(
        ttft_by_round[2] > ttft_by_round[0],
        "ttfts must grow with context length: {ttft_by_round:?}"
    );

    // Deterministic end to end: regenerate + replay gives identical TTFTs.
    let workload2 = ChatAppendGen::new(64, 4, 60, 20)
        .with_rounds(3)
        .generate(&mut workload_rng(17), TENANTS);
    let mut cluster2 = build_cluster();
    let mut replay: Vec<f64> = Vec::new();
    for round in 0..workload2.num_rounds() {
        for s in 0..workload2.sessions.len() {
            let ctx = workload2.context_at(s, round);
            cluster2.store_context(workload2.sessions[s].context_id, &ctx);
        }
        let report = cluster2.run(&workload2.round_requests(round));
        let mean: f64 = report.ttfts(None).iter().sum::<f64>() / report.completed().count() as f64;
        replay.push(mean);
    }
    assert_eq!(ttft_by_round, replay, "ingest replay must be bit-identical");
}
