//! Trace determinism and Noop-equivalence of the serving telemetry.
//!
//! The telemetry layer stamps spans in virtual time, so two runs of the
//! same seeded workload must export byte-identical Chrome traces and
//! metrics snapshots — and recording must be observation-only: a run
//! with a live recorder resolves every request exactly like a run with
//! the no-op recorder.

use cachegen::{EngineConfig, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link, PacketFaults};
use cachegen_serving::{ServingCluster, ServingConfig, ServingReport};
use cachegen_telemetry::{
    chrome_trace_json, metrics_snapshot_json, validate_chrome_trace, Recorder, Stage, NOOP,
};
use cachegen_workloads::{workload_rng, SharedPrefixGen};

const SEED: u64 = 13;
const REQUESTS: usize = 80;

fn build_cluster() -> ServingCluster {
    let config = ServingConfig {
        repair: RepairPolicy::Refetch,
        retransmit_budget: 0,
        ..ServingConfig::default()
    };
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    let links = (0..config.num_shards)
        .map(|s| {
            Link::new(BandwidthTrace::constant(5e6), 0.0)
                .with_packet_faults(PacketFaults::loss(0.2), 300 + s as u64)
        })
        .collect();
    ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        config,
        &profile,
        links,
    )
}

fn run_once(recorder: &Recorder) -> ServingReport {
    let mut cluster = build_cluster();
    let gen = SharedPrefixGen::new(64, 6, 90);
    let workload = gen.generate(
        &mut workload_rng(SEED),
        cluster.config().num_tenants,
        REQUESTS,
        20.0,
    );
    for (id, tokens) in &workload.documents {
        cluster.store_context(*id, tokens);
    }
    cluster.run_traced(&workload.requests, recorder)
}

#[test]
fn same_seed_exports_byte_identical_trace_and_metrics() {
    let export = || {
        let recorder = Recorder::new();
        let report = run_once(&recorder);
        let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
        let metrics = metrics_snapshot_json(&recorder.registry_snapshot());
        (report, trace, metrics)
    };
    let (report_a, trace_a, metrics_a) = export();
    let (report_b, trace_b, metrics_b) = export();
    assert_eq!(report_a.outcomes, report_b.outcomes);
    assert_eq!(trace_a, trace_b, "Chrome trace must be byte-identical");
    assert_eq!(
        metrics_a, metrics_b,
        "metrics snapshot must be byte-identical"
    );
    assert!(trace_a.contains("\"traceEvents\""));
}

#[test]
fn noop_recorder_leaves_outcomes_unchanged() {
    let recorder = Recorder::new();
    let traced = run_once(&recorder);
    let silent = run_once(&NOOP);
    assert_eq!(
        traced.outcomes, silent.outcomes,
        "recording must be observation-only"
    );
    assert_eq!(traced.makespan, silent.makespan);
    assert!(!recorder.spans().is_empty(), "traced run must record spans");
}

#[test]
fn exported_trace_validates_and_tiles_every_ttft() {
    let recorder = Recorder::new();
    let report = run_once(&recorder);
    let trace = chrome_trace_json(&recorder.spans(), &recorder.instants());
    let summary = validate_chrome_trace(&trace).expect("trace must validate");
    assert_eq!(
        summary.requests,
        report.completed().count()
            + report
                .shards
                .iter()
                .map(|s| s.refetches as usize)
                .sum::<usize>(),
        "one root per completed request plus one per re-fetch batch"
    );

    // Each completed request's direct children must tile >= 99% of its
    // TTFT (they tile it exactly by construction; the bound is what the
    // acceptance criterion asks of any implementation).
    let spans = recorder.spans();
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let Some(ttft) = outcome.ttft() else { continue };
        let covered: f64 = spans
            .iter()
            .filter(|s| s.ctx.request == i as u64 && s.stage != Stage::Request)
            .filter(|s| {
                matches!(
                    s.stage,
                    Stage::QueueWait | Stage::StoreFetch | Stage::CacheDecode | Stage::Prefill
                )
            })
            .map(|s| s.duration())
            .sum();
        assert!(
            covered >= 0.99 * ttft && covered <= ttft + 1e-9,
            "request {i}: tiled {covered} of ttft {ttft}"
        );
    }
}

#[test]
fn registry_reports_serving_and_net_namespaces() {
    let recorder = Recorder::new();
    let report = run_once(&recorder);
    let snap = recorder.registry_snapshot();
    assert_eq!(
        snap.counter("cachegen.serving.requests"),
        Some(REQUESTS as u64)
    );
    assert_eq!(
        snap.counter("cachegen.serving.completed"),
        Some(report.completed().count() as u64)
    );
    let fetched: u64 = report.shards.iter().map(|s| s.bytes_fetched).sum();
    assert_eq!(
        snap.counter("cachegen.serving.bytes_fetched"),
        Some(fetched)
    );
    assert!(snap.counter("cachegen.net.packets_sent").unwrap_or(0) > 0);
    assert!(
        snap.counter("cachegen.net.packets_dropped").unwrap_or(0) > 0,
        "a 20% lossy link must drop packets"
    );
    let hist = snap
        .histogram("cachegen.serving.ttft_ms")
        .expect("ttft histogram");
    assert_eq!(hist.count(), report.completed().count() as u64);
    // The histogram's nearest-bucket quantile tracks the exact
    // nearest-rank percentile within a bucket width (12.5%).
    let p50_exact = report.ttft_percentile(None, 50.0).expect("completions");
    let p50_hist = hist.quantile(50.0).expect("histogram p50") / 1e3;
    assert!(
        (p50_hist - p50_exact).abs() / p50_exact < 0.125,
        "histogram p50 {p50_hist} vs exact {p50_exact}"
    );
}
