//! Failure injection: lossy links, corrupted bitstreams, eviction races.
//!
//! In the spirit of the smoltcp examples' `--drop-chance` / `--corrupt-
//! chance` options: the system must degrade predictably, never panic on
//! malformed input, and keep its accounting consistent under faults.

use cachegen::{load_context, CacheGenEngine, EngineConfig, LoadParams};
use cachegen_codec::EncodedKv;
use cachegen_llm::SimModelConfig;
use cachegen_net::trace::{BandwidthTrace, GBPS};
use cachegen_net::Link;
use cachegen_streamer::AdaptPolicy;
use cachegen_workloads::{workload_rng, Dataset};

fn engine() -> (CacheGenEngine, Vec<usize>) {
    let mut rng = workload_rng(900);
    let profile = Dataset::LongChat.generate(&mut rng, 512, 150).tokens;
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &[profile],
    );
    let ctx = Dataset::LongChat.generate(&mut rng, 512, 150).tokens;
    (engine, ctx)
}

/// A 20%-loss, 20%-jitter goodput-derated link slows the stream but the
/// load still completes and the cache is intact (the legacy fault model:
/// loss shows up as implicit-retransmission delay, never damage).
#[test]
fn lossy_jittery_link_still_completes() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let mut clean = Link::new(BandwidthTrace::constant(GBPS), 0.0);
    let t_clean = load_context(&engine, &cache, &mut clean, &LoadParams::default());
    let mut lossy = Link::new(BandwidthTrace::constant(GBPS), 0.0).derate_goodput(0.2, 0.2, 77);
    let t_lossy = load_context(&engine, &cache, &mut lossy, &LoadParams::default());
    assert_eq!(t_lossy.cache.tokens(), ctx.len());
    assert!(
        t_lossy.stream.finish > t_clean.stream.finish,
        "loss must cost time: {} vs {}",
        t_lossy.stream.finish,
        t_clean.stream.finish
    );
    // Delivered payload is identical — loss shows up as delay, not damage.
    assert_eq!(t_lossy.cache, t_clean.cache);
    assert!(
        t_lossy.repairs.is_empty(),
        "derated links never leave holes"
    );
}

/// The adapter still meets the SLO on a lossy link by downshifting harder.
#[test]
fn adapter_compensates_for_loss() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let (_, plan) = engine.encode_context(&cache);
    let bw = plan.total_bytes_at_level(0) as f64 * 8.0 / 0.9; // level 0 ≈ 0.9 s clean
    let p = LoadParams {
        slo: Some(1.0),
        policy: AdaptPolicy::Adaptive,
        prior_throughput_bps: Some(bw * 0.5), // conservative prior
        recompute_sec_per_token: 0.5,
        ..LoadParams::default()
    };
    let mut lossy = Link::new(BandwidthTrace::constant(bw), 0.0).derate_goodput(0.3, 0.0, 5);
    let out = load_context(&engine, &cache, &mut lossy, &p);
    assert!(
        out.stream.slo_met,
        "adapter should absorb 30% loss: finish {}",
        out.stream.finish
    );
}

/// On a per-packet-fault link, holes are repaired — the load completes at
/// the clean link's pace with provenance for every damaged chunk, and the
/// cache contains no undecoded noise.
#[test]
fn packet_loss_degrades_instead_of_stalling() {
    use cachegen::RepairPolicy;
    use cachegen_net::PacketFaults;
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let mut clean = Link::new(BandwidthTrace::constant(GBPS), 0.0);
    let t_clean = load_context(&engine, &cache, &mut clean, &LoadParams::default());
    let mut lossy = Link::new(BandwidthTrace::constant(GBPS), 0.0)
        .with_packet_faults(PacketFaults::loss(0.15), 77);
    let p = LoadParams {
        repair: RepairPolicy::AnchorInterpolate,
        retransmit_budget: 0,
        ..LoadParams::default()
    };
    let t_lossy = load_context(&engine, &cache, &mut lossy, &p);
    assert_eq!(t_lossy.cache.tokens(), ctx.len());
    assert!(!t_lossy.repairs.is_empty(), "15% loss must need repairs");
    assert!(t_lossy.repaired_fraction > 0.0 && t_lossy.repaired_fraction < 1.0);
    assert!(t_lossy.cache.k().data().iter().all(|x| x.is_finite()));
    assert!(t_lossy.cache.v().data().iter().all(|x| x.is_finite()));
    // No stall: the damaged stream finishes within a whisker of clean.
    assert!(
        t_lossy.stream.finish <= t_clean.stream.finish * 1.1 + 0.05,
        "repair path must not stall: {} vs {}",
        t_lossy.stream.finish,
        t_clean.stream.finish
    );
}

/// Every single-byte truncation of a valid container either parses to the
/// identical value (impossible here) or errors — never panics.
#[test]
fn truncated_bitstreams_error_cleanly() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let bytes = engine
        .encode_at_level(&cache.slice_tokens(0, 30), 1)
        .to_bytes();
    for cut in 0..bytes.len() {
        let r = EncodedKv::from_bytes(&bytes[..cut]);
        assert!(r.is_err(), "truncation at {cut} should fail to parse");
    }
}

/// Corrupting stream payload bytes never crashes the decoder: the
/// fallible decode either detects the damage through the chunk's exact
/// byte accounting (a [`cachegen_codec::CodecError`]) or yields a
/// *different but total* decode (range decoding maps any bit pattern to
/// some symbol sequence) whose blast radius is confined to the corrupted
/// (layer, group) chunk.
#[test]
fn corrupted_payload_decodes_or_reports_without_panic() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let chunk = cache.slice_tokens(0, 30);
    let enc = engine.encode_at_level(&chunk, 1);
    let reference = engine.decode_at_level(&enc, 1);
    let mut corrupted = enc.clone();
    let payload = &mut corrupted.k_chunks[0][0];
    let mid = payload.len() / 2;
    payload[mid] ^= 0xFF;
    match engine.try_decode_at_level(&corrupted, 1) {
        Err(e) => {
            // Exact accounting caught the damage and named the chunk.
            assert!(format!("{e}").contains("layer 0"), "got: {e}");
        }
        Ok(got) => {
            assert_eq!(got.tokens(), reference.tokens(), "shape must survive");
            assert!(got.k().data().iter().all(|v| v.is_finite()));
            // Damage cannot leak outside the corrupted chunk's layer 0
            // token range; every other layer decodes identically.
            for l in 1..got.layers() {
                assert_eq!(got.k().slab(l), reference.k().slab(l));
            }
            assert_eq!(got.v(), reference.v());
        }
    }
}

/// Decoding with a mismatched level never panics through the fallible
/// path — the engine ships the level out of band, so this is the blast
/// radius of a level-routing bug. The chunked decoder's exact byte
/// accounting usually *detects* the mismatch (the wrong level's frequency
/// tables consume a different byte count than the chunk frames); when the
/// counts happen to coincide, the decode is total (shape preserved,
/// finite) as before.
#[test]
fn wrong_level_decode_is_reported_or_total() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let chunk = cache.slice_tokens(0, 30);
    let enc = engine.encode_at_level(&chunk, 0);
    match engine.try_decode_at_level(&enc, engine.num_levels() - 1) {
        Err(_) => {} // mismatch detected — the routing bug is surfaced
        Ok(wrong) => {
            assert_eq!(wrong.tokens(), 30);
            assert!(wrong.k().data().iter().all(|v| v.is_finite()));
        }
    }
}

/// Store eviction under concurrent readers keeps accounting exact.
#[test]
fn eviction_accounting_under_concurrency() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let (engine, ctx) = engine();
    for id in 0..4u64 {
        engine.store_kv(id, &ctx);
    }
    let total = engine.store().total_bytes();
    let per: Vec<u64> = (0..4)
        .map(|i| engine.store().context_bytes(i).unwrap())
        .collect();
    assert_eq!(total, per.iter().sum::<u64>());

    let freed = AtomicU64::new(0);
    cachegen_codec::pool::for_each_pooled((0..4u64).collect(), |_, id| {
        freed.fetch_add(engine.store().evict(id), Ordering::Relaxed);
    });
    assert_eq!(freed.load(Ordering::Relaxed), total);
    assert_eq!(engine.store().total_bytes(), 0);
}

/// Zero-propagation-delay and high-propagation links bracket the finish
/// time monotonically.
#[test]
fn propagation_delay_monotonicity() {
    let (engine, ctx) = engine();
    let cache = engine.calculate_kv(&ctx);
    let run = |prop: f64| {
        let mut link = Link::new(BandwidthTrace::constant(GBPS), prop);
        load_context(&engine, &cache, &mut link, &LoadParams::default())
            .stream
            .finish
    };
    let t0 = run(0.0);
    let t1 = run(0.05);
    let t2 = run(0.5);
    assert!(t0 < t1 && t1 < t2, "{t0} {t1} {t2}");
}
