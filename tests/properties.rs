//! Property-based tests on the workspace's core invariants.

use cachegen_codec::delta::{merge_anchor_deltas, split_anchor_deltas, GroupLayout};
use cachegen_codec::rc::{Decoder, Encoder};
use cachegen_codec::symbol_model::FreqTable;
use cachegen_codec::{CodecConfig, CodecProfile, EncodedKv, KvCodec};
use cachegen_llm::{KvCache, SimModelConfig, SimTransformer};
use cachegen_net::trace::BandwidthTrace;
use cachegen_quant::BinQuantizer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The range coder is lossless for any symbol stream under any
    /// (positive-count) frequency table, and consumes its stream exactly
    /// (no synthetic past-end reads, no slack).
    #[test]
    fn range_coder_round_trips_any_stream(
        counts in proptest::collection::vec(0u32..500, 2..32),
        seed in 0u64..1_000,
        len in 1usize..600,
    ) {
        let table = FreqTable::from_counts(&counts);
        let alpha = counts.len();
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let symbols: Vec<usize> = (0..len).map(|_| rng.gen::<usize>() % alpha).collect();
        let mut enc = Encoder::new();
        for &s in &symbols {
            enc.encode(&table, s);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(dec.decode(&table), s);
        }
        prop_assert_eq!(dec.bytes_consumed(), bytes.len());
        prop_assert_eq!(dec.overrun_bytes(), 0);
    }

    /// Anchor-delta split/merge is an exact inverse for any geometry.
    #[test]
    fn anchor_delta_split_merge_identity(
        tokens in 1usize..80,
        channels in 1usize..12,
        group in 1usize..20,
        seed in 0u64..1_000,
    ) {
        let layout = GroupLayout::new(group, tokens);
        let mut rng = cachegen_tensor::rng::seeded(seed);
        let slab = cachegen_tensor::rng::normal_vec(&mut rng, tokens * channels, 0.0, 3.0);
        let (anchors, deltas) = split_anchor_deltas(&slab, channels, layout);
        let back = merge_anchor_deltas(&anchors, &deltas, channels, layout);
        for (a, b) in back.iter().zip(&slab) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    /// Bin quantization error is bounded by half a step for in-range
    /// values.
    #[test]
    fn bin_quantizer_error_bound(
        bin in 0.05f32..4.0,
        scale in 0.01f32..10.0,
        values in proptest::collection::vec(-50.0f32..50.0, 1..200),
    ) {
        let q = BinQuantizer::new(bin);
        let syms = q.quantize(&values, scale);
        let back = q.dequantize(&syms, scale);
        for (v, b) in values.iter().zip(&back) {
            prop_assert!((v - b).abs() <= q.max_error(scale) + 1e-4);
        }
    }

    /// Bandwidth-trace transfer time inverts bytes_transferable for any
    /// piecewise trace.
    #[test]
    fn trace_transfer_inversion(
        rates in proptest::collection::vec(1e3f64..1e9, 1..8),
        bytes in 1u64..100_000_000,
        start in 0.0f64..20.0,
    ) {
        let segments: Vec<(f64, f64)> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as f64 * 1.5, r))
            .collect();
        let trace = BandwidthTrace::from_segments(segments);
        let dur = trace.transfer_seconds(bytes, start);
        prop_assert!(dur.is_finite() && dur >= 0.0);
        let got = trace.bytes_transferable(start, dur);
        // Integer floor on bytes: allow ±1.
        prop_assert!((got as i128 - bytes as i128).abs() <= 1,
            "bytes {} -> dur {} -> {}", bytes, dur, got);
    }

    /// The bitstream container parses back exactly for arbitrary stream
    /// payloads and dimensions.
    #[test]
    fn container_round_trips(
        layers in 1usize..6,
        tokens in 1usize..100,
        channels in 1usize..32,
        group in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let groups = tokens.div_ceil(group);
        let mut mk_chunks = || -> Vec<Vec<Vec<u8>>> {
            (0..layers)
                .map(|_| {
                    (0..groups)
                        .map(|_| {
                            let n = rng.gen::<usize>() % 200;
                            (0..n).map(|_| rng.gen::<u8>()).collect()
                        })
                        .collect()
                })
                .collect()
        };
        let k_chunks = mk_chunks();
        let v_chunks = mk_chunks();
        // Scales must be exactly representable on the bf16 wire.
        let mut mk_scales = || -> Vec<Vec<f32>> {
            (0..layers)
                .map(|_| {
                    (0..channels)
                        .map(|_| {
                            // Exponent bits in [0x30, 0x6F]: always finite,
                            // positive, and exactly bf16-representable.
                            cachegen_codec::encoder::wire_to_scale(
                                0x3000 + (rng.gen::<u16>() % 0x4000),
                            )
                        })
                        .collect()
                })
                .collect()
        };
        let scales = [mk_scales(), mk_scales(), mk_scales(), mk_scales()];
        let enc = EncodedKv {
            layers,
            tokens,
            channels,
            group_size: group,
            delta_encoding: seed % 2 == 0,
            // Exercise both live wire versions; chunk payloads here are
            // random bytes (the container layer never inspects them).
            entropy_version: if seed % 3 == 0 { 2 } else { 3 },
            k_chunks,
            v_chunks,
            scales,
        };
        let bytes = enc.to_bytes();
        prop_assert_eq!(bytes.len() as u64, enc.total_bytes());
        let back = EncodedKv::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, enc);
    }
}

proptest! {
    // The codec round-trip test prefially runs the transformer, so fewer
    // cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any context on the tiny model, decode(encode(kv)) reconstructs
    /// within quantization bounds and decode is deterministic + parallel-
    /// safe.
    #[test]
    fn codec_round_trip_any_context(
        seed in 0u64..500,
        len in 12usize..60,
    ) {
        let model = SimTransformer::new(SimModelConfig::tiny(7));
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let ctx: Vec<usize> = (0..len).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = model.prefill(&ctx);
        let cfg = CodecConfig::default();
        let profile = CodecProfile::build(&cfg, &[&cache]);
        let codec = KvCodec::new(cfg, profile);
        let enc = codec.encode(&cache);
        let dec1 = codec.decode(&enc);
        let dec2 = codec.decode_parallel(&enc);
        prop_assert_eq!(&dec1, &dec2);
        // Lossy only through quantization: bounded reconstruction error.
        prop_assert!(cache.mse(&dec1) < 1.0, "mse {}", cache.mse(&dec1));
        // Serialized form survives the wire.
        let back = EncodedKv::from_bytes(&enc.to_bytes()).unwrap();
        prop_assert_eq!(codec.decode(&back), dec1);
    }

    /// Chunk-independent encoding: slicing at any group-aligned boundary
    /// and concatenating decoded chunks equals decoding the whole.
    #[test]
    fn chunked_encoding_is_boundary_invariant(
        seed in 0u64..200,
        groups_in_first in 1usize..3,
    ) {
        let model = SimTransformer::new(SimModelConfig::tiny(13));
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let len = 40; // 4 groups of 10
        let ctx: Vec<usize> = (0..len).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = model.prefill(&ctx);
        let cfg = CodecConfig::default();
        let profile = CodecProfile::build(&cfg, &[&cache]);
        let codec = KvCodec::new(cfg, profile);
        let whole = codec.decode(&codec.encode(&cache));
        let cut = groups_in_first * 10;
        let a = codec.decode(&codec.encode(&cache.slice_tokens(0, cut)));
        let b = codec.decode(&codec.encode(&cache.slice_tokens(cut, len)));
        let merged = KvCache::concat_tokens(&[a, b]);
        // Per-chunk vectorwise scales differ from whole-cache scales, so
        // require same-order loss rather than bit-identity.
        let whole_mse = cache.mse(&whole) as f64;
        let merged_mse = cache.mse(&merged) as f64;
        prop_assert!(
            merged_mse <= 2.5 * whole_mse + 1e-6,
            "chunked loss {} vs whole loss {}", merged_mse, whole_mse
        );
    }
}
