//! Backpressure integration test: an over-admitted shard must degrade
//! encoding levels and shed requests deterministically instead of growing
//! its queue without bound.

use cachegen::EngineConfig;
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link};
use cachegen_serving::{Disposition, ServingCluster, ServingConfig, ServingReport};
use cachegen_streamer::AdaptPolicy;
use cachegen_workloads::{workload_rng, SharedPrefixGen};

const TENANTS: usize = 4;
const SHARDS: usize = 2;

/// Tight watermarks on a starved link: arrivals outpace service.
fn overload_config() -> ServingConfig {
    ServingConfig {
        num_shards: SHARDS,
        num_tenants: TENANTS,
        degrade_depth: 2,
        shed_depth: 5,
        // Disable coalescing so pressure actually builds (each batch
        // serves exactly one request).
        max_batch: 1,
        policy: AdaptPolicy::Adaptive,
        prior_throughput_bps: Some(2e5),
        slo: Some(0.5),
        ..ServingConfig::default()
    }
}

fn run_overloaded(seed: u64) -> ServingReport {
    let cfg = overload_config();
    // 0.2 Mbps store links: a single context takes long enough to stream
    // that a 60 req/s arrival rate floods the queues.
    let links = (0..SHARDS)
        .map(|_| Link::new(BandwidthTrace::constant(2e5), 0.0))
        .collect();
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    let mut cluster = ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        cfg,
        &profile,
        links,
    );
    let workload =
        SharedPrefixGen::new(64, 6, 90).generate(&mut workload_rng(seed), TENANTS, 120, 60.0);
    for (id, tokens) in &workload.documents {
        cluster.store_context(*id, tokens);
    }
    cluster.run(&workload.requests)
}

#[test]
fn overloaded_shard_sheds_and_degrades_instead_of_queueing_unboundedly() {
    let report = run_overloaded(17);

    // Every request resolves one way or the other — nothing is lost.
    assert_eq!(report.outcomes.len(), 120);
    assert_eq!(report.completed().count() + report.shed_count(), 120);

    // The queue bound holds on every shard: depth never exceeded the shed
    // watermark (this is the "no unbounded queue" guarantee).
    let cfg = overload_config();
    for (i, s) in report.shards.iter().enumerate() {
        assert!(
            s.peak_queue_depth <= cfg.shed_depth,
            "shard {i} queue peaked at {} > shed depth {}",
            s.peak_queue_depth,
            cfg.shed_depth
        );
    }

    // Overload actually engaged both backpressure mechanisms.
    assert!(report.shed_count() > 0, "overload must shed");
    assert!(report.degraded_count() > 0, "overload must degrade");

    // Degraded service really is coarser: completed degraded requests on
    // the miss path carry a lower quality proxy than normal misses.
    let quality = |want_degraded: bool| -> Vec<f64> {
        report
            .completed()
            .filter_map(|o| match o.disposition {
                Disposition::Completed {
                    quality, degraded, ..
                } if degraded == want_degraded => Some(quality),
                _ => None,
            })
            .collect()
    };
    let degraded = quality(true);
    let normal = quality(false);
    assert!(!degraded.is_empty() && !normal.is_empty());
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&degraded) < mean(&normal),
        "degraded mean quality {} should be below normal {}",
        mean(&degraded),
        mean(&normal)
    );
}

#[test]
fn backpressure_outcome_is_deterministic_per_seed() {
    let a = run_overloaded(23);
    let b = run_overloaded(23);
    assert_eq!(a.outcomes, b.outcomes, "same seed ⇒ same outcomes");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.shed_count(), b.shed_count());
    for p in [50.0, 95.0, 99.0] {
        for tenant in 0..TENANTS {
            assert_eq!(
                a.ttft_percentile(Some(tenant), p),
                b.ttft_percentile(Some(tenant), p),
                "tenant {tenant} p{p} diverged"
            );
        }
    }

    // Different seeds exercise a different schedule (sanity that the
    // determinism above is not vacuous).
    let c = run_overloaded(29);
    assert_ne!(a.outcomes, c.outcomes);
}
