//! Backpressure integration test: an over-admitted shard must degrade
//! encoding levels and shed requests deterministically instead of growing
//! its queue without bound.

use cachegen::{EngineConfig, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link, PacketFaults};
use cachegen_serving::{Disposition, ServingCluster, ServingConfig, ServingReport};
use cachegen_streamer::{AdaptPolicy, FecOverhead};
use cachegen_workloads::{workload_rng, SharedPrefixGen};

const TENANTS: usize = 4;
const SHARDS: usize = 2;

/// Tight watermarks on a starved link: arrivals outpace service.
fn overload_config() -> ServingConfig {
    ServingConfig {
        num_shards: SHARDS,
        num_tenants: TENANTS,
        degrade_depth: 2,
        shed_depth: 5,
        // Disable coalescing so pressure actually builds (each batch
        // serves exactly one request).
        max_batch: 1,
        policy: AdaptPolicy::Adaptive,
        prior_throughput_bps: Some(2e5),
        slo: Some(0.5),
        ..ServingConfig::default()
    }
}

fn run_overloaded(seed: u64) -> ServingReport {
    let cfg = overload_config();
    // 0.2 Mbps store links: a single context takes long enough to stream
    // that a 60 req/s arrival rate floods the queues.
    let links = (0..SHARDS)
        .map(|_| Link::new(BandwidthTrace::constant(2e5), 0.0))
        .collect();
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    let mut cluster = ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        cfg,
        &profile,
        links,
    );
    let workload =
        SharedPrefixGen::new(64, 6, 90).generate(&mut workload_rng(seed), TENANTS, 120, 60.0);
    for (id, tokens) in &workload.documents {
        cluster.store_context(*id, tokens);
    }
    cluster.run(&workload.requests)
}

#[test]
fn overloaded_shard_sheds_and_degrades_instead_of_queueing_unboundedly() {
    let report = run_overloaded(17);

    // Every request resolves one way or the other — nothing is lost.
    assert_eq!(report.outcomes.len(), 120);
    assert_eq!(report.completed().count() + report.shed_count(), 120);

    // The queue bound holds on every shard: depth never exceeded the shed
    // watermark (this is the "no unbounded queue" guarantee).
    let cfg = overload_config();
    for (i, s) in report.shards.iter().enumerate() {
        assert!(
            s.peak_queue_depth <= cfg.shed_depth,
            "shard {i} queue peaked at {} > shed depth {}",
            s.peak_queue_depth,
            cfg.shed_depth
        );
    }

    // Overload actually engaged both backpressure mechanisms.
    assert!(report.shed_count() > 0, "overload must shed");
    assert!(report.degraded_count() > 0, "overload must degrade");

    // Degraded service really is coarser: completed degraded requests on
    // the miss path carry a lower quality proxy than normal misses.
    let quality = |want_degraded: bool| -> Vec<f64> {
        report
            .completed()
            .filter_map(|o| match o.disposition {
                Disposition::Completed {
                    quality, degraded, ..
                } if degraded == want_degraded => Some(quality),
                _ => None,
            })
            .collect()
    };
    let degraded = quality(true);
    let normal = quality(false);
    assert!(!degraded.is_empty() && !normal.is_empty());
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&degraded) < mean(&normal),
        "degraded mean quality {} should be below normal {}",
        mean(&degraded),
        mean(&normal)
    );
}

/// Builds a cluster whose store links inject seeded packet loss, with a
/// configurable FEC knob.
fn lossy_cluster(
    loss: f64,
    fec: FecOverhead,
    tenant_fec: Vec<Option<FecOverhead>>,
) -> ServingCluster {
    let cfg = ServingConfig {
        num_shards: SHARDS,
        num_tenants: TENANTS,
        repair: RepairPolicy::Refetch,
        retransmit_budget: 0,
        fec_overhead: fec,
        tenant_fec,
        ..ServingConfig::default()
    };
    let links = (0..SHARDS)
        .map(|s| {
            Link::new(BandwidthTrace::constant(5e6), 0.0)
                .with_packet_faults(PacketFaults::loss(loss), 300 + s as u64)
        })
        .collect();
    let profile: Vec<Vec<usize>> = vec![(0..60).map(|i| (i * 7) % 64).collect()];
    ServingCluster::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        cfg,
        &profile,
        links,
    )
}

fn run_lossy(cluster: &mut ServingCluster, seed: u64) -> ServingReport {
    let workload =
        SharedPrefixGen::new(64, 6, 90).generate(&mut workload_rng(seed), TENANTS, 100, 10.0);
    for (id, tokens) in &workload.documents {
        cluster.store_context(*id, tokens);
    }
    cluster.run(&workload.requests)
}

/// On a lossy store link with the Refetch ladder, turning FEC on must
/// collapse the re-fetch queue traffic (most losses are recovered before
/// a hole ever reaches the repair rung), and the new ShardSummary FEC
/// counters must account for it deterministically.
#[test]
fn fec_on_lossy_links_suppresses_the_refetch_queue() {
    // 5% i.i.d. packet loss; dense parity (k=2) on the tiny schedules.
    let mut without = lossy_cluster(0.05, FecOverhead::Off, Vec::new());
    let off = run_lossy(&mut without, 77);
    let mut with = lossy_cluster(0.05, FecOverhead::Uniform(2), Vec::new());
    let on = run_lossy(&mut with, 77);

    let refetches = |r: &ServingReport| r.shards.iter().map(|s| s.refetches).sum::<u64>();
    let lost = |r: &ServingReport| r.shards.iter().map(|s| s.lost_bytes).sum::<u64>();
    assert!(refetches(&off) > 0, "5% loss without FEC must refetch");
    assert!(
        refetches(&on) * 4 <= refetches(&off),
        "FEC must drop refetch batches to ~zero: {} vs {}",
        refetches(&on),
        refetches(&off)
    );
    assert!(lost(&on) < lost(&off), "parity must absorb most lost bytes");

    // The FEC counters surface the overhead and the recoveries.
    let parity: u64 = on.shards.iter().map(|s| s.parity_bytes).sum();
    let recovered: u64 = on.shards.iter().map(|s| s.fec_recovered_packets).sum();
    assert!(parity > 0 && recovered > 0);
    let off_parity: u64 = off.shards.iter().map(|s| s.parity_bytes).sum();
    assert_eq!(off_parity, 0);
    assert_eq!(
        off.shards
            .iter()
            .map(|s| s.fec_recovered_packets)
            .sum::<u64>(),
        0
    );

    // Deterministic replay, counters included.
    let mut again = lossy_cluster(0.05, FecOverhead::Uniform(2), Vec::new());
    let rerun = run_lossy(&mut again, 77);
    assert_eq!(on.outcomes, rerun.outcomes);
    for (a, b) in on.shards.iter().zip(rerun.shards.iter()) {
        assert_eq!(a.parity_bytes, b.parity_bytes);
        assert_eq!(a.fec_recovered_packets, b.fec_recovered_packets);
        assert_eq!(a.refetches, b.refetches);
    }
}

/// The FEC knob is per-tenant: a cluster whose default is Off but whose
/// tenant 0 buys parity shows parity bytes exactly when tenant-0-led
/// batches fetch.
#[test]
fn per_tenant_fec_knob_shows_up_in_shard_counters() {
    let tenant_fec = {
        let mut v: Vec<Option<FecOverhead>> = vec![None; TENANTS];
        v[0] = Some(FecOverhead::Uniform(4));
        v
    };
    let mut mixed = lossy_cluster(0.05, FecOverhead::Off, tenant_fec);
    let report = run_lossy(&mut mixed, 91);
    let parity: u64 = report.shards.iter().map(|s| s.parity_bytes).sum();
    assert!(
        parity > 0,
        "tenant 0 leads some batches, so its parity must appear"
    );
    // All-Off control: same workload, no parity anywhere.
    let mut plain = lossy_cluster(0.05, FecOverhead::Off, Vec::new());
    let control = run_lossy(&mut plain, 91);
    assert_eq!(
        control.shards.iter().map(|s| s.parity_bytes).sum::<u64>(),
        0
    );
    // A tenant buying parity means the cluster fetches *more* bytes (the
    // overhead) but recovers packets the control could only refetch.
    let recovered: u64 = report.shards.iter().map(|s| s.fec_recovered_packets).sum();
    assert!(recovered > 0);
}

#[test]
fn backpressure_outcome_is_deterministic_per_seed() {
    let a = run_overloaded(23);
    let b = run_overloaded(23);
    assert_eq!(a.outcomes, b.outcomes, "same seed ⇒ same outcomes");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.shed_count(), b.shed_count());
    for p in [50.0, 95.0, 99.0] {
        for tenant in 0..TENANTS {
            assert_eq!(
                a.ttft_percentile(Some(tenant), p),
                b.ttft_percentile(Some(tenant), p),
                "tenant {tenant} p{p} diverged"
            );
        }
    }

    // Different seeds exercise a different schedule (sanity that the
    // determinism above is not vacuous).
    let c = run_overloaded(29);
    assert_ne!(a.outcomes, c.outcomes);
}
