//! The paper's §5.1 empirical insights, verified on our substrate.
//!
//! CacheGen's design rests on three measured properties of KV caches.
//! Because our transformer actually computes KV caches via self-attention
//! over structured (topical, locally-repetitive) text, the same properties
//! should — and do — emerge here. These tests are the assertable versions
//! of Figures 3, 4 and 5.

use cachegen_codec::delta::consecutive_deltas;
use cachegen_llm::{eval, KvCache, SimModelConfig, SimTransformer};
use cachegen_tensor::stats;
use cachegen_workloads::{workload_rng, Dataset};

fn workload_cache(model: &SimTransformer, seed: u64, len: usize) -> (KvCache, Vec<usize>) {
    let mut rng = workload_rng(seed);
    let sample = Dataset::LongChat.generate(&mut rng, model.config().vocab, len);
    (model.prefill(&sample.tokens), sample.tokens)
}

/// Insight 1 (Figure 3): deltas between consecutive tokens concentrate
/// around zero much more than the raw values — the paper reports 2.4–2.9×
/// lower variance; we require at least 1.5× on both models it profiles.
#[test]
fn insight1_token_locality_deltas_have_lower_variance() {
    for cfg in [
        SimModelConfig::llama7b_sim(42),
        SimModelConfig::llama13b_sim(42),
    ] {
        let name = cfg.name.clone();
        let model = SimTransformer::new(cfg);
        let (cache, _) = workload_cache(&model, 1, 200);
        for (tname, tensor) in [("K", cache.k()), ("V", cache.v())] {
            let orig_var = stats::variance(tensor.data());
            let deltas = consecutive_deltas(tensor);
            let delta_var = stats::variance(&deltas);
            let ratio = orig_var / delta_var;
            assert!(
                ratio > 1.5,
                "{name} {tname}: original/delta variance ratio {ratio:.2} too low \
                 (orig {orig_var:.4}, delta {delta_var:.4})"
            );
        }
    }
}

/// Insight 2 (Figure 4): quantization loss applied to the *early* layers
/// hurts output quality more than the same loss applied to the deep layers.
/// This emerges mechanically: early-layer errors propagate through every
/// later layer's attention.
#[test]
fn insight2_early_layers_are_more_loss_sensitive() {
    let model = SimTransformer::new(SimModelConfig::llama13b_sim(42));
    let (cache, _) = workload_cache(&model, 2, 160);
    let n_layers = cache.layers();
    let prompts: Vec<Vec<usize>> = (0..24)
        .map(|p| vec![(p * 19) % 512, (p * 7 + 3) % 512])
        .collect();

    // Apply a heavy rounding loss to one contiguous third of the layers.
    let lossy_on = |lo: usize, hi: usize| -> KvCache {
        let mut k = cache.k().clone();
        let mut v = cache.v().clone();
        for t in [&mut k, &mut v] {
            for l in lo..hi {
                for x in t.slab_mut(l) {
                    *x = (*x / 0.4).round() * 0.4;
                }
            }
        }
        KvCache::from_tensors(k, v)
    };
    let third = n_layers / 3;
    let early = eval::first_token_accuracy(&model, &cache, &lossy_on(0, third), &prompts);
    let late = eval::first_token_accuracy(
        &model,
        &cache,
        &lossy_on(n_layers - third, n_layers),
        &prompts,
    );
    assert!(
        late >= early,
        "late-layer loss (acc {late:.2}) should hurt no more than early-layer loss (acc {early:.2})"
    );
    // And the effect should be material, not a tie at 1.0: early-layer loss
    // must actually degrade something at this severity.
    assert!(
        early < 1.0,
        "early-layer loss should be visible, got {early}"
    );
}

/// Insight 3 (Figure 5): grouping values by (channel, layer) yields much
/// more information gain (lower conditional entropy) than grouping by
/// token position.
#[test]
fn insight3_channel_layer_grouping_beats_token_grouping() {
    let model = SimTransformer::new(SimModelConfig::llama7b_sim(42));
    let (cache, _) = workload_cache(&model, 3, 200);
    let t = cache.k();
    let (layers, tokens, channels) = (cache.layers(), cache.tokens(), cache.channels());
    let values: Vec<f32> = t.data().to_vec();
    let mut by_token = Vec::with_capacity(values.len());
    let mut by_channel = Vec::with_capacity(values.len());
    let mut by_layer = Vec::with_capacity(values.len());
    let mut by_channel_layer = Vec::with_capacity(values.len());
    for l in 0..layers {
        for tok in 0..tokens {
            for c in 0..channels {
                by_layer.push(l);
                by_token.push(tok);
                by_channel.push(c);
                by_channel_layer.push(l * channels + c);
            }
        }
    }
    let bin = 0.25;
    let none = stats::quantized_entropy(&values, bin);
    let token_gain = none - stats::grouped_entropy(&values, &by_token, bin);
    let channel_gain = none - stats::grouped_entropy(&values, &by_channel, bin);
    let layer_gain = none - stats::grouped_entropy(&values, &by_layer, bin);
    let cl_gain = none - stats::grouped_entropy(&values, &by_channel_layer, bin);
    // Figure 5's ordering: token grouping helps least; channel and layer
    // grouping help more, and the combined (channel, layer) grouping that
    // CacheGen's symbol models use helps most. (Real LLMs show a larger
    // channel-only gap than our random-weight simulator, which lacks the
    // outlier-channel phenomenon — DESIGN.md §2.)
    assert!(
        channel_gain > 0.5 * token_gain,
        "channel gain {channel_gain:.3} vs token gain {token_gain:.3}"
    );
    assert!(
        layer_gain > token_gain,
        "layer gain {layer_gain:.3} vs token gain {token_gain:.3}"
    );
    assert!(
        cl_gain > 2.0 * token_gain,
        "channel-layer gain {cl_gain:.3} vs token gain {token_gain:.3}"
    );
}

/// §7.5's ablation premise: per-(channel, layer) symbol distributions
/// shrink CacheGen bitstreams versus one global distribution (the paper
/// reports up to 53%).
#[test]
fn channel_layer_symbol_models_compress_better_than_global() {
    use cachegen_codec::{CodecConfig, CodecProfile, KvCodec, ModelGranularity};
    let model = SimTransformer::new(SimModelConfig::llama7b_sim(42));
    let (cache, _) = workload_cache(&model, 4, 200);
    let size_with = |g: ModelGranularity| -> u64 {
        let cfg = CodecConfig {
            granularity: g,
            ..CodecConfig::default()
        };
        let profile = CodecProfile::build(&cfg, &[&cache]);
        KvCodec::new(cfg, profile).encode(&cache).total_bytes()
    };
    let global = size_with(ModelGranularity::Global);
    let per_cl = size_with(ModelGranularity::PerChannelLayer);
    assert!(
        per_cl < global,
        "per-channel-layer {per_cl} should beat global {global}"
    );
}
