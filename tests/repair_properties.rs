//! Property tests for the codec's repair policies (the loss-resilience
//! contracts):
//!
//! (a) *any* subset of delivered chunks decodes without panic under every
//!     policy, with one provenance record per hole;
//! (b) `AnchorInterpolate`'s reconstruction error is bounded by the
//!     neighbor-row distance (the repaired value is a convex combination
//!     of the two boundary rows);
//! (c) delivery order is irrelevant: reordered delivery decodes
//!     byte-identically to in-order delivery.

use cachegen::{load_context, CacheGenEngine, EngineConfig, LoadParams, RepairPolicy};
use cachegen_codec::{ChunkArrivalMap, RepairKind};
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link, PacketFaults};
use proptest::prelude::*;

fn engine() -> CacheGenEngine {
    let profile: Vec<usize> = (0..60).map(|i| (i * 7) % 64).collect();
    CacheGenEngine::build(
        SimModelConfig::tiny(42),
        EngineConfig::default(),
        &[profile],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Any arrival subset decodes totally, under every policy, with
    /// exact provenance.
    #[test]
    fn any_delivered_subset_decodes_without_panic(
        seed in 0u64..300,
        lost_mask in proptest::collection::vec(0usize..2, 10..17),
        policy_pick in 0usize..3,
    ) {
        let e = engine();
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let ctx: Vec<usize> = (0..40).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = e.calculate_kv(&ctx);
        let enc = e.encode_at_level(&cache, 1);
        let (layers, groups) = (enc.layers, enc.num_groups());
        let mut arrivals = ChunkArrivalMap::full(layers, groups);
        let mut expected_lost = 0usize;
        for (i, &lost) in lost_mask.iter().enumerate() {
            if lost == 1 {
                let side = i % 2 == 0;
                let layer = (i / 2) % layers;
                let group = (i / (2 * layers)) % groups;
                if !arrivals.is_lost(side, layer, group) {
                    arrivals.mark_lost(side, layer, group);
                    expected_lost += 1;
                }
            }
        }
        let policy = [
            RepairPolicy::ZeroFill,
            RepairPolicy::AnchorInterpolate,
            RepairPolicy::Refetch,
        ][policy_pick];
        let out = e
            .decode_with_repairs_at_level(&enc, 1, &arrivals, policy)
            .expect("any subset must decode");
        prop_assert_eq!(out.repairs.len(), expected_lost);
        prop_assert_eq!(out.cache.tokens(), cache.tokens());
        prop_assert!(out.cache.k().data().iter().all(|x| x.is_finite()));
        prop_assert!(out.cache.v().data().iter().all(|x| x.is_finite()));
        if expected_lost == 0 {
            prop_assert_eq!(&out.cache, &e.decode_at_level(&enc, 1));
        }
    }

    /// (b) Interpolated repair error is bounded by the worse neighbor-row
    /// distance: the reconstruction is a convex combination of the left
    /// neighbor's last row and the right neighbor's anchor row.
    #[test]
    fn interpolation_error_bounded_by_neighbor_distance(
        seed in 0u64..300,
        lost_groups_raw in proptest::collection::vec(0usize..4, 1..3),
    ) {
        let e = engine();
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let ctx: Vec<usize> = (0..40).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = e.calculate_kv(&ctx);
        let enc = e.encode_at_level(&cache, 0);
        let clean = e.decode_at_level(&enc, 0);
        let layout = enc.layout();
        let lost_groups: std::collections::BTreeSet<usize> =
            lost_groups_raw.into_iter().collect();
        let mut arrivals = ChunkArrivalMap::full(enc.layers, enc.num_groups());
        for &g in &lost_groups {
            arrivals.mark_lost(true, 0, g);
        }
        let out = e
            .decode_with_repairs_at_level(&enc, 0, &arrivals, RepairPolicy::AnchorInterpolate)
            .unwrap();
        for r in &out.repairs {
            let RepairKind::Interpolated { left, right } = &r.kind else {
                // A fully lost layer degenerates to zero-fill; bound
                // trivially holds against the zero row.
                continue;
            };
            // Boundary rows the repair interpolated between.
            let l_tok = left.map(|g| layout.group_range(g).1 - 1);
            let r_tok = right.map(|g| layout.group_range(g).0);
            let (start, end) = layout.group_range(r.group);
            for t in start..end {
                for c in 0..cache.channels() {
                    let got = out.cache.k().get(&[r.layer, t, c]);
                    let x = clean.k().get(&[r.layer, t, c]);
                    let dl = l_tok.map(|lt| (clean.k().get(&[r.layer, lt, c]) - x).abs());
                    let dr = r_tok.map(|rt| (clean.k().get(&[r.layer, rt, c]) - x).abs());
                    let bound = dl.unwrap_or(0.0).max(dr.unwrap_or(0.0));
                    prop_assert!(
                        (got - x).abs() <= bound + 1e-5,
                        "layer {} tok {t} ch {c}: err {} > neighbor distance {}",
                        r.layer, (got - x).abs(), bound
                    );
                }
            }
        }
    }

    /// (c) Arrival order is irrelevant: the same delivered set decodes
    /// byte-identically regardless of the order holes were recorded, and
    /// a reorder-only link (nothing lost) is byte-identical to a clean
    /// link end to end.
    #[test]
    fn reordered_delivery_is_byte_identical(
        seed in 0u64..300,
        order in proptest::collection::vec(0usize..16, 4..10),
    ) {
        let e = engine();
        let mut rng = cachegen_tensor::rng::seeded(seed);
        use rand::Rng;
        let ctx: Vec<usize> = (0..40).map(|_| rng.gen::<usize>() % 64).collect();
        let cache = e.calculate_kv(&ctx);
        let enc = e.encode_at_level(&cache, 1);
        let (layers, groups) = (enc.layers, enc.num_groups());
        // Record the same loss set in two different orders.
        let addr = |i: usize| (i.is_multiple_of(2), (i / 2) % layers, (i / (2 * layers)) % groups);
        let mut fwd = ChunkArrivalMap::full(layers, groups);
        for &i in &order {
            let (s, l, g) = addr(i);
            fwd.mark_lost(s, l, g);
        }
        let mut rev = ChunkArrivalMap::full(layers, groups);
        for &i in order.iter().rev() {
            let (s, l, g) = addr(i);
            rev.mark_lost(s, l, g);
        }
        prop_assert_eq!(&fwd, &rev);
        let a = e
            .decode_with_repairs_at_level(&enc, 1, &fwd, RepairPolicy::AnchorInterpolate)
            .unwrap();
        let b = e
            .decode_with_repairs_at_level(&enc, 1, &rev, RepairPolicy::AnchorInterpolate)
            .unwrap();
        prop_assert_eq!(a.cache.k().data(), b.cache.k().data());
        prop_assert_eq!(a.cache.v().data(), b.cache.v().data());
        prop_assert_eq!(a.repairs, b.repairs);
    }
}

/// End-to-end flavour of (c): a link that only *reorders* (no loss)
/// yields the bit-exact clean-link cache.
#[test]
fn reorder_only_link_is_lossless_end_to_end() {
    let e = engine();
    let ctx: Vec<usize> = (0..60).map(|i| (i * 11) % 64).collect();
    let cache = e.calculate_kv(&ctx);
    let clean = {
        let mut link = Link::new(BandwidthTrace::constant(1e9), 0.01);
        load_context(&e, &cache, &mut link, &LoadParams::default())
    };
    for seed in [1u64, 7, 23] {
        let mut link = Link::new(BandwidthTrace::constant(1e9), 0.01).with_packet_faults(
            PacketFaults {
                reorder: 0.6,
                ..PacketFaults::none()
            },
            seed,
        );
        let out = load_context(&e, &cache, &mut link, &LoadParams::default());
        assert_eq!(out.cache, clean.cache, "seed {seed}");
        assert!(out.repairs.is_empty(), "reorder alone loses nothing");
    }
}
