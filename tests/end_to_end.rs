//! Cross-crate integration tests: the full CacheGen data path.

use cachegen::{load_context, CacheGenEngine, EngineConfig, LoadParams};
use cachegen_baselines::{h2o, lingua, quantization_baseline};
use cachegen_codec::{CodecConfig, CodecProfile, EncodedKv, KvCodec};
use cachegen_llm::{eval, KvCache, SimModelConfig, SimTransformer};
use cachegen_net::trace::{BandwidthTrace, GBPS};
use cachegen_net::Link;
use cachegen_streamer::{AdaptPolicy, StreamConfig};
use cachegen_workloads::{workload_rng, Dataset};

fn build_engine(seed: u64) -> (CacheGenEngine, Vec<usize>) {
    let mut rng = workload_rng(seed);
    let vocab = 512;
    let profile: Vec<Vec<usize>> = (0..2)
        .map(|_| Dataset::LongChat.generate(&mut rng, vocab, 200).tokens)
        .collect();
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &profile,
    );
    let ctx = Dataset::LongChat.generate(&mut rng, vocab, 200).tokens;
    (engine, ctx)
}

fn prompts(n: usize, vocab: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|p| vec![(p * 13) % vocab, (p * 31 + 5) % vocab])
        .collect()
}

/// Table 1's core claim: at comparable accuracy, CacheGen's bitstream is
/// several times smaller than the 8-bit quantization baseline.
#[test]
fn table1_cachegen_beats_8bit_at_matched_quality() {
    let (engine, ctx) = build_engine(100);
    let cache = engine.calculate_kv(&ctx);
    let ps = prompts(24, 512);

    let q8 = quantization_baseline(&cache, 8);
    let acc_q8 = eval::first_token_accuracy(engine.model(), &cache, &q8.cache, &ps);

    let enc = engine.encode_at_level(&cache, 1); // paper-default bins
    let dec = engine.decode_at_level(&enc, 1);
    let acc_cg = eval::first_token_accuracy(engine.model(), &cache, &dec, &ps);

    let ratio = q8.wire_bytes as f64 / enc.total_bytes() as f64;
    assert!(
        ratio > 1.8,
        "CacheGen should be well below 8-bit: ratio {ratio:.2} \
         ({} vs {} bytes)",
        enc.total_bytes(),
        q8.wire_bytes
    );
    assert!(
        acc_cg >= acc_q8 - 0.25,
        "CacheGen accuracy {acc_cg:.2} should be near the 8-bit baseline {acc_q8:.2}"
    );
}

/// Figure 10: CacheGen composes with context-compression baselines — the
/// codec further shrinks the KV cache H2O and LLMLingua leave behind.
#[test]
fn fig10_cachegen_on_h2o_and_lingua() {
    let (engine, ctx) = build_engine(200);
    let model = engine.model();

    // H2O keeps 60% of tokens; its wire format is a quantized tensor.
    let pruned = h2o::prune(model, &ctx, 0.6);
    let h2o_bytes = pruned.wire_bytes(8.0);
    // CacheGen on H2O: encode the pruned cache with a profile built on it.
    let cfg = CodecConfig::default();
    let profile = CodecProfile::build(&cfg, &[&pruned.cache]);
    let codec = KvCodec::new(cfg, profile);
    let enc = codec.encode(&pruned.cache);
    assert!(
        enc.total_bytes() * 2 < h2o_bytes,
        "CacheGen on H2O: {} vs {} bytes",
        enc.total_bytes(),
        h2o_bytes
    );
    // Decode still reconstructs a usable cache.
    let dec = codec.decode_parallel(&enc);
    assert_eq!(dec.tokens(), pruned.cache.tokens());

    // LLMLingua compresses the text; the (smaller) recomputed cache still
    // compresses under CacheGen.
    let compressed = lingua::compress(&ctx, 0.5);
    let small_cache = model.prefill(&compressed.tokens);
    let lingua_bytes = small_cache.size_bytes(8.0);
    let cfg2 = CodecConfig::default();
    let profile2 = CodecProfile::build(&cfg2, &[&small_cache]);
    let enc2 = KvCodec::new(cfg2, profile2).encode(&small_cache);
    assert!(
        enc2.total_bytes() * 2 < lingua_bytes,
        "CacheGen on LLMLingua: {} vs {} bytes",
        enc2.total_bytes(),
        lingua_bytes
    );
}

/// The full serving path: store_kv → get_kv over the wire → decode →
/// generate, across engine, codec, kvstore and llm crates.
#[test]
fn store_fetch_decode_generate_round_trip() {
    let (engine, ctx) = build_engine(300);
    let plan = engine.store_kv(5, &ctx);
    let level = 1;
    let mut chunks = Vec::new();
    for c in 0..plan.num_chunks() {
        let fetched = engine.get_kv(5, c, level).expect("chunk stored");
        let bytes = match fetched {
            cachegen_kvstore::FetchedChunk::Encoded(b) => b,
            other => panic!("unexpected fetch result {other:?}"),
        };
        let enc = EncodedKv::from_bytes(&bytes).expect("parse bitstream");
        chunks.push(engine.decode_at_level(&enc, level));
    }
    let cache = KvCache::concat_tokens(&chunks);
    assert_eq!(cache.tokens(), ctx.len());
    let out = engine.generate_with_kv(&cache, &[3, 9], 5);
    assert_eq!(out.len(), 5);

    // The streamed+decoded cache reconstructs the context with the same
    // order of loss as direct whole-context encoding (chunks carry their
    // own vectorwise scales, §5.3).
    let reference = engine.calculate_kv(&ctx);
    let enc_whole = engine.encode_at_level(&reference, level);
    let dec_whole = engine.decode_at_level(&enc_whole, level);
    let whole_mse = reference.mse(&dec_whole);
    let streamed_mse = reference.mse(&cache);
    assert!(
        streamed_mse <= 2.5 * whole_mse + 1e-6,
        "streamed loss {streamed_mse} vs whole loss {whole_mse}"
    );
}

/// Figure 7 end-to-end at functional scale: adaptation downshifts under a
/// bandwidth dip and finishes sooner than the non-adaptive stream.
#[test]
fn adaptive_streaming_beats_fixed_under_bandwidth_dip() {
    let (engine, ctx) = build_engine(400);
    let cache = engine.calculate_kv(&ctx);
    let (_, plan) = engine.encode_context(&cache);
    // Scale a figure-7-like trace to this plan: level 0 fits in 4 s at the
    // starting bandwidth, then the link dips 10× for 2 s.
    let level0 = plan.total_bytes_at_level(0) as f64 * 8.0;
    let bw = level0 / 4.0;
    let trace = BandwidthTrace::from_segments(vec![(0.0, bw), (2.0, bw / 10.0), (4.0, bw)]);

    let run = |policy: AdaptPolicy| {
        let mut link = Link::new(trace.clone(), 0.0);
        let p = LoadParams {
            slo: Some(4.5),
            policy,
            prior_throughput_bps: Some(bw),
            recompute_sec_per_token: 0.2, // recompute unattractive
            ..LoadParams::default()
        };
        load_context(&engine, &cache, &mut link, &p)
    };
    let fixed = run(AdaptPolicy::FixedLevel(0));
    let adaptive = run(AdaptPolicy::Adaptive);
    assert!(
        !fixed.stream.slo_met,
        "fixed should violate ({})",
        fixed.stream.finish
    );
    assert!(
        adaptive.stream.finish < fixed.stream.finish,
        "adaptive {} vs fixed {}",
        adaptive.stream.finish,
        fixed.stream.finish
    );
    assert!(adaptive
        .stream
        .chunks
        .iter()
        .any(|c| c.config != StreamConfig::Level(0)));
}

/// Figure 13's mechanism at functional scale: across random bandwidth
/// traces, adaptation violates the SLO less often than a fixed level.
#[test]
fn fig13_adaptation_reduces_slo_violations() {
    let (engine, ctx) = build_engine(500);
    let cache = engine.calculate_kv(&ctx);
    let (_, plan) = engine.encode_context(&cache);
    let level0 = plan.total_bytes_at_level(0) as f64 * 8.0;
    let slo = 1.0;
    // Traces centred so level 0 sometimes fits and sometimes doesn't.
    let mut fixed_viol = 0;
    let mut adapt_viol = 0;
    let n_traces = 20;
    for seed in 0..n_traces {
        let mut rng = workload_rng(1_000 + seed);
        let trace = BandwidthTrace::random_uniform(
            &mut rng,
            0.2 * level0 / slo,
            3.0 * level0 / slo,
            0.25,
            8,
        );
        let run = |policy: AdaptPolicy| {
            let mut link = Link::new(trace.clone(), 0.0);
            let p = LoadParams {
                slo: Some(slo),
                policy,
                prior_throughput_bps: Some(level0 / slo),
                recompute_sec_per_token: 0.2,
                ..LoadParams::default()
            };
            load_context(&engine, &cache, &mut link, &p).stream.slo_met
        };
        if !run(AdaptPolicy::FixedLevel(0)) {
            fixed_viol += 1;
        }
        if !run(AdaptPolicy::Adaptive) {
            adapt_viol += 1;
        }
    }
    assert!(
        adapt_viol <= fixed_viol,
        "adaptive violations {adapt_viol}/{n_traces} vs fixed {fixed_viol}/{n_traces}"
    );
    assert!(fixed_viol > 0, "sweep should include hard traces");
}

/// Quality/size frontier (Figure 9's shape): walking the level ladder
/// trades bytes for accuracy monotonically in size and (loosely) in
/// quality.
#[test]
fn fig9_quality_size_frontier() {
    let (engine, ctx) = build_engine(600);
    let cache = engine.calculate_kv(&ctx);
    let ps = prompts(20, 512);
    let mut sizes = Vec::new();
    let mut accs = Vec::new();
    for level in 0..engine.num_levels() {
        let enc = engine.encode_at_level(&cache, level);
        let dec = engine.decode_at_level(&enc, level);
        sizes.push(enc.total_bytes());
        accs.push(eval::first_token_accuracy(
            engine.model(),
            &cache,
            &dec,
            &ps,
        ));
    }
    assert!(
        sizes.windows(2).all(|w| w[0] > w[1]),
        "sizes must fall monotonically: {sizes:?}"
    );
    assert!(
        accs[0] >= *accs.last().unwrap(),
        "finest should be at least as accurate as coarsest: {accs:?}"
    );
    assert!(accs[0] >= 0.6, "finest accuracy too low: {accs:?}");
}

/// A second model (GQA Mistral-style) exercises the non-MHA path through
/// the whole stack.
#[test]
fn gqa_model_full_path() {
    let mut rng = workload_rng(700);
    let ctx = Dataset::TriviaQa.generate(&mut rng, 512, 150).tokens;
    let engine = CacheGenEngine::build(
        SimModelConfig::mistral7b_sim(9),
        EngineConfig::default(),
        std::slice::from_ref(&ctx),
    );
    let cache = engine.calculate_kv(&ctx);
    assert!(
        cache.channels()
            < SimTransformer::new(SimModelConfig::llama7b_sim(9))
                .config()
                .kv_channels()
    );
    let enc = engine.encode_at_level(&cache, 1);
    let dec = engine.decode_at_level(&enc, 1);
    assert!(cache.mse(&dec) < 0.5);
    let mut link = Link::new(BandwidthTrace::constant(GBPS), 0.0);
    let out = load_context(&engine, &cache, &mut link, &LoadParams::default());
    assert_eq!(out.cache.tokens(), ctx.len());
}
