//! Acceptance tests for the loss-resilient transport (the `loss_sweep`
//! experiment's headline numbers, pinned):
//!
//! * at 10% chunk-packet loss, the `AnchorInterpolate` repair path's TTFT
//!   stays within 1.2× of the lossless path, while the stall-and-retry
//!   baseline (infinite retransmit budget, NACK round trip per retry
//!   round) exceeds 2×;
//! * everything is deterministic under a fixed seed;
//! * reordered / partial delivery never panics and never silently decodes
//!   noise — every repaired chunk carries provenance.

use cachegen::{load_context, CacheGenEngine, EngineConfig, FecOverhead, LoadParams, RepairPolicy};
use cachegen_llm::SimModelConfig;
use cachegen_net::{BandwidthTrace, Link, PacketFaults};
use cachegen_streamer::{deliver_schedule, AdaptPolicy, ChunkSchedule, PacketId};
use cachegen_workloads::{workload_rng, Dataset};

const BW_BPS: f64 = 1.0e6;
const PROPAGATION: f64 = 0.1;
const SEED: u64 = 77;

fn scenario() -> (CacheGenEngine, cachegen_llm::KvCache) {
    let mut rng = workload_rng(900);
    let profile = Dataset::LongChat.generate(&mut rng, 512, 150).tokens;
    let engine = CacheGenEngine::build(
        SimModelConfig::llama7b_sim(42),
        EngineConfig::default(),
        &[profile],
    );
    let ctx = Dataset::LongChat.generate(&mut rng, 512, 150).tokens;
    let reference = engine.calculate_kv(&ctx);
    (engine, reference)
}

fn run(
    engine: &CacheGenEngine,
    reference: &cachegen_llm::KvCache,
    loss: f64,
    repair: RepairPolicy,
    budget: usize,
) -> cachegen::LoadOutcome {
    let faults = PacketFaults {
        loss,
        reorder: 0.05,
        ..PacketFaults::none()
    };
    let mut link =
        Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION).with_packet_faults(faults, SEED);
    let params = LoadParams {
        policy: AdaptPolicy::FixedLevel(2),
        prior_throughput_bps: Some(BW_BPS),
        repair,
        retransmit_budget: budget,
        ..LoadParams::default()
    };
    load_context(engine, reference, &mut link, &params)
}

/// The headline acceptance numbers at 10% loss.
#[test]
fn repair_beats_stall_at_ten_percent_loss() {
    let (engine, reference) = scenario();
    let lossless = run(&engine, &reference, 0.0, RepairPolicy::AnchorInterpolate, 0);
    let repaired = run(
        &engine,
        &reference,
        0.10,
        RepairPolicy::AnchorInterpolate,
        0,
    );
    let stalled = run(
        &engine,
        &reference,
        0.10,
        RepairPolicy::AnchorInterpolate,
        usize::MAX,
    );

    let t0 = lossless.stream.finish;
    assert!(
        repaired.stream.finish <= 1.2 * t0,
        "AnchorInterpolate TTFT {} must stay within 1.2x of lossless {}",
        repaired.stream.finish,
        t0
    );
    assert!(
        stalled.stream.finish > 2.0 * t0,
        "stall-and-retry TTFT {} must exceed 2x lossless {}",
        stalled.stream.finish,
        t0
    );
    // Stall recovered everything (no repairs); the repair path reported
    // provenance for every hole it filled.
    assert!(stalled.repairs.is_empty());
    assert_eq!(stalled.cache, lossless.cache, "stall delivers bit-exact");
    assert!(!repaired.repairs.is_empty());
    assert!(repaired.repaired_fraction > 0.0);
    // Interpolated repair keeps the damage bounded: a finite cache whose
    // error stays within a small factor of the lossless reconstruction.
    assert!(repaired.cache.k().data().iter().all(|x| x.is_finite()));
    let base_mse = reference.mse(&lossless.cache);
    let rep_mse = reference.mse(&repaired.cache);
    assert!(
        rep_mse < 6.0 * base_mse,
        "repaired mse {rep_mse} should stay within a few x of lossless {base_mse}"
    );
}

/// Fixed seed → bit-identical sweep cells (the experiment's determinism
/// criterion).
#[test]
fn sweep_cells_are_deterministic() {
    let (engine, reference) = scenario();
    for policy in [
        RepairPolicy::ZeroFill,
        RepairPolicy::AnchorInterpolate,
        RepairPolicy::Refetch,
    ] {
        let a = run(&engine, &reference, 0.10, policy, 0);
        let b = run(&engine, &reference, 0.10, policy, 0);
        assert_eq!(a.cache, b.cache, "{policy:?}");
        assert_eq!(a.repairs, b.repairs);
        assert_eq!(a.stream.chunks, b.stream.chunks);
        assert_eq!(a.refetch_finish, b.refetch_finish);
    }
}

/// A uniform 24-packet schedule (no size outliers, so every packet is
/// parity-protected).
fn uniform_schedule() -> ChunkSchedule {
    let entries: Vec<(PacketId, u64)> = (0..24)
        .map(|i| {
            (
                PacketId {
                    group: i / 8,
                    layer: (i / 2) % 4,
                    is_k: i % 2 == 0,
                },
                400u64,
            )
        })
        .collect();
    ChunkSchedule::priority_ordered(entries)
}

/// Burst drops vs the striped interleaver: with `k = 4` over 24 packets
/// the stride is 6, so a burst of 3 consecutive drops lands in 3
/// *different* parity groups — every one a recoverable single loss. The
/// same burst without FEC is 3 unrecoverable holes.
#[test]
fn interleaver_converts_bursts_into_single_per_group_losses() {
    let fec_cfg = FecOverhead::Uniform(4);
    let sizes = uniform_schedule().packet_sizes();
    let fec = fec_cfg.groups_for(0, &sizes).unwrap();
    // Structural guarantee: the stride is ceil(24/4) = 6, so any window
    // of up to 6 *consecutive* data packets touches 6 distinct parity
    // groups — a burst no longer than the stride is a single loss in
    // every group it hits, hence always recoverable (parity permitting).
    let stride = 6;
    for start in 0..=(24 - stride) {
        let mut seen = std::collections::HashSet::new();
        for i in start..start + stride {
            let g = fec.group_of(i).unwrap();
            assert!(seen.insert(g), "window at {start} hits group {g} twice");
        }
    }
    // End to end, over seeded 3-packet drop bursts: recovery is
    // exercised, and bursts that land clear of parity packets are
    // recovered *completely* (no losses survive to the repair chain).
    let run = |seed: u64, with_fec: bool| {
        let sched = uniform_schedule();
        let mut link = Link::new(BandwidthTrace::constant(1e7), 0.01)
            .with_packet_faults(PacketFaults::burst(0.04, 3), seed);
        let groups = if with_fec { Some(&fec) } else { None };
        deliver_schedule(&sched, &mut link, 0.0, 1, 0, groups)
    };
    let (mut exercised, mut fully_recovered, mut plain_lost) = (0, 0, 0usize);
    for seed in 0..40u64 {
        let d = run(seed, true);
        if d.lost.is_empty() && d.fec_recovered.is_empty() {
            continue; // no burst fired for this seed
        }
        exercised += 1;
        if d.lost.is_empty() && d.fec_recovered.len() >= 2 {
            fully_recovered += 1;
        }
        plain_lost += run(seed, false).lost.len();
    }
    assert!(exercised >= 5, "only {exercised} seeds fired a burst");
    assert!(
        fully_recovered >= 3,
        "bursts within the stride must be fully recovered ({fully_recovered}/{exercised})"
    );
    assert!(plain_lost > 0, "without FEC the same bursts lose packets");
}

/// Multi-parity burst coverage: with `Rs { k: 6, r: 2 }` over 24 packets
/// the stride is 4 groups, so the interleaver bound says any burst of up
/// to `stride · r = 8` consecutive data drops costs every group at most
/// `r = 2` losses — still solvable. The XOR shape with the same stride
/// (`Uniform(6)`, `r = 1`) only covers bursts up to the stride itself;
/// a 5-packet burst already double-hits a group it cannot solve.
#[test]
fn multi_parity_interleaver_covers_bursts_up_to_stride_times_r() {
    let rs_cfg = FecOverhead::Rs { k: 6, r: 2 };
    let xor_cfg = FecOverhead::Uniform(6);
    let sizes = uniform_schedule().packet_sizes();
    let rs = rs_cfg.groups_for(0, &sizes).unwrap();
    // Structural guarantee: every window of stride · r = 8 consecutive
    // data packets loses at most r = 2 members of any parity group.
    let window = 8;
    for start in 0..=(24 - window) {
        let mut per_group = std::collections::HashMap::new();
        for i in start..start + window {
            *per_group.entry(rs.group_of(i).unwrap()).or_insert(0usize) += 1;
        }
        for (g, hits) in per_group {
            assert!(
                hits <= rs.repairs_of(g),
                "window at {start}: group {g} takes {hits} > r losses"
            );
        }
    }
    // End to end, over seeded 5-packet drop bursts — longer than the
    // XOR coverage bound (stride = 4), within the RS one (8). Aggregate
    // over seeds: the arms put different parity counts on the wire, so
    // per-seed loss patterns are not comparable across arms.
    let run = |seed: u64, cfg: &FecOverhead| {
        let sched = uniform_schedule();
        let groups = cfg.groups_for(0, &sched.packet_sizes()).unwrap();
        let mut link = Link::new(BandwidthTrace::constant(1e7), 0.01)
            .with_packet_faults(PacketFaults::burst(0.03, 5), seed);
        deliver_schedule(&sched, &mut link, 0.0, 1, 0, Some(&groups))
    };
    let (mut rs_exercised, mut rs_fully_recovered) = (0, 0);
    let (mut rs_lost, mut xor_lost) = (0usize, 0usize);
    for seed in 0..60u64 {
        let d = run(seed, &rs_cfg);
        if !d.lost.is_empty() || !d.fec_recovered.is_empty() {
            rs_exercised += 1;
            if d.lost.is_empty() && d.fec_recovered.len() >= 2 {
                rs_fully_recovered += 1;
            }
        }
        rs_lost += d.lost.len();
        xor_lost += run(seed, &xor_cfg).lost.len();
    }
    assert!(
        rs_exercised >= 10,
        "only {rs_exercised} seeds fired a burst"
    );
    assert!(
        rs_fully_recovered * 10 >= rs_exercised * 6,
        "bursts within stride · r must mostly recover in full \
         ({rs_fully_recovered}/{rs_exercised})"
    );
    assert!(
        rs_lost * 2 <= xor_lost,
        "r = 2 must at least halve the residual burst losses of r = 1: \
         {rs_lost} vs {xor_lost}"
    );
}

/// When a parity group takes two losses, FEC cannot solve its single
/// equation: the group's packets fall through to the repair chain, with
/// full provenance — pinned end to end on a seeded burst longer than the
/// interleaver stride.
#[test]
fn two_losses_in_a_group_fall_back_to_repair() {
    let (engine, reference) = scenario();
    // i.i.d. 15% loss with FEC on: some parity group takes ≥2 losses
    // (seeded), so repairs and recoveries coexist and never overlap.
    let faults = PacketFaults::loss(0.15);
    let mut link =
        Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION).with_packet_faults(faults, 31);
    let params = LoadParams {
        policy: AdaptPolicy::FixedLevel(2),
        prior_throughput_bps: Some(BW_BPS),
        repair: RepairPolicy::AnchorInterpolate,
        retransmit_budget: 0,
        fec_overhead: FecOverhead::paper_default(),
        ..LoadParams::default()
    };
    let out = load_context(&engine, &reference, &mut link, &params);
    assert!(
        !out.fec_recovered.is_empty(),
        "single-loss groups must recover"
    );
    assert!(
        !out.repairs.is_empty(),
        "a ≥2-loss group must engage the repair fallback"
    );
    for (_, r) in &out.repairs {
        assert_eq!(r.cause, cachegen_codec::RepairCause::Lost);
        assert!(matches!(
            r.kind,
            cachegen_codec::RepairKind::Interpolated { .. }
                | cachegen_codec::RepairKind::ZeroFilled
        ));
    }
    // Recovered and repaired chunks are disjoint per stream chunk.
    for (idx, rec) in &out.fec_recovered {
        assert!(
            !out.repairs.iter().any(|(ri, rr)| ri == idx
                && rr.is_k == rec.is_k
                && rr.layer == rec.layer
                && rr.group == rec.group),
            "chunk {idx} both recovered and repaired"
        );
    }
    assert!(out.cache.k().data().iter().all(|x| x.is_finite()));
}

/// Reorder + truncation + duplication never panic, and whatever decodes
/// carries provenance for everything that was repaired.
#[test]
fn hostile_delivery_never_panics_or_decodes_noise() {
    let (engine, reference) = scenario();
    let faults = PacketFaults {
        loss: 0.10,
        reorder: 0.4,
        duplicate: 0.2,
        truncate: 0.15,
        ..PacketFaults::none()
    };
    for (seed, policy) in [
        (1u64, RepairPolicy::ZeroFill),
        (2, RepairPolicy::AnchorInterpolate),
        (3, RepairPolicy::Refetch),
    ] {
        let mut link = Link::new(BandwidthTrace::constant(BW_BPS), PROPAGATION)
            .with_packet_faults(faults, seed);
        let params = LoadParams {
            policy: AdaptPolicy::FixedLevel(2),
            prior_throughput_bps: Some(BW_BPS),
            repair: policy,
            retransmit_budget: 0,
            ..LoadParams::default()
        };
        let out = load_context(&engine, &reference, &mut link, &params);
        assert_eq!(out.cache.tokens(), reference.tokens());
        assert!(out.cache.k().data().iter().all(|x| x.is_finite()));
        assert!(out.cache.v().data().iter().all(|x| x.is_finite()));
        // Truncated packets count as losses: every one of them shows up
        // in the provenance, none is decoded as noise.
        let lost: usize = out.stream.lost_packets();
        assert_eq!(
            out.repairs.len(),
            lost,
            "every lost/truncated packet must be accounted as a repair"
        );
        if policy == RepairPolicy::Refetch && lost > 0 {
            assert!(out.refetch_finish.is_some());
            // Refetch patched the holes: final cache matches the clean
            // decode of the same adapter choices.
            assert_eq!(out.cache, run(&engine, &reference, 0.0, policy, 0).cache);
        }
    }
}
